package tabled

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"time"

	"pairfn/internal/extarray"
	"pairfn/internal/obs"
	"pairfn/internal/srvkit"
)

// DefaultMaxBatch caps the ops accepted in one /v1/batch request.
const DefaultMaxBatch = 4096

// DefaultMaxBodyBytes caps the /v1/batch request body (http.MaxBytesReader).
const DefaultMaxBodyBytes = 4 << 20

// DefaultBatchTimeout bounds one /v1/batch request end to end; a handler
// that overruns it is abandoned and the client sees a 503.
const DefaultBatchTimeout = 30 * time.Second

// DefaultIdempotencyCache is how many recent Idempotency-Key responses the
// server retains for replay.
const DefaultIdempotencyCache = 4096

// An Op is one operation in a batch request. Exactly the fields its kind
// needs are consulted:
//
//	{"op":"set", "x":1, "y":2, "v":"payload"}
//	{"op":"get", "x":1, "y":2}
//	{"op":"resize", "rows":100, "cols":200}
//	{"op":"dims"}
//	{"op":"stats"}
type Op struct {
	Op   string `json:"op"`
	X    int64  `json:"x,omitempty"`
	Y    int64  `json:"y,omitempty"`
	V    string `json:"v,omitempty"`
	Rows int64  `json:"rows,omitempty"`
	Cols int64  `json:"cols,omitempty"`
}

// An OpResult is the outcome of one Op, in request order.
type OpResult struct {
	OK    bool            `json:"ok"`
	Found bool            `json:"found,omitempty"`
	V     string          `json:"v,omitempty"`
	Rows  int64           `json:"rows,omitempty"`
	Cols  int64           `json:"cols,omitempty"`
	Stats *extarray.Stats `json:"stats,omitempty"`
	Err   string          `json:"error,omitempty"`
}

// BatchRequest is the body of POST /v1/batch.
type BatchRequest struct {
	Ops []Op `json:"ops"`
}

// BatchResponse is its reply.
type BatchResponse struct {
	Results []OpResult `json:"results"`
}

// StatsReply is the body of GET /v1/stats.
type StatsReply struct {
	Info  Info           `json:"info"`
	Rows  int64          `json:"rows"`
	Cols  int64          `json:"cols"`
	Stats extarray.Stats `json:"stats"`
}

// ServerOptions configures NewHandler.
type ServerOptions struct {
	// Registry receives request and tabled metrics; nil disables both.
	Registry *obs.Registry
	// Metrics is the batch/shard instrumentation bundle (may be nil).
	Metrics *Metrics
	// Logger, when non-nil, logs one line per request.
	Logger *slog.Logger
	// Ready gates /readyz (nil reads as always ready).
	Ready *obs.Flag
	// MaxBatch caps ops per request (0 → DefaultMaxBatch).
	MaxBatch int
	// MaxBodyBytes caps the /v1/batch request body; oversized requests get
	// a 413 (0 → DefaultMaxBodyBytes).
	MaxBodyBytes int64
	// BatchTimeout bounds one /v1/batch request; overruns get a 503
	// (0 → DefaultBatchTimeout, negative → no timeout).
	BatchTimeout time.Duration
	// Snapshot, when non-nil, is invoked by POST /v1/snapshot. Backends
	// without snapshot support leave it nil and the endpoint returns 501.
	// With a WAL configured, this should checkpoint through WAL.Checkpoint
	// so the log is reset under the same cut as the snapshot.
	Snapshot func() error
	// WAL, when non-nil, receives every acknowledged set/resize before the
	// HTTP response is written: the durability contract is "200 implies
	// fsynced". A WAL failure flips the server into read-only degraded
	// mode (Writable goes false) instead of killing it.
	WAL *WAL
	// Writable gates write ops (set/resize): while false they get a 503
	// and /readyz reports degraded; reads keep working. Nil reads as
	// always-writable unless a WAL is configured, in which case NewHandler
	// installs a flag so it can degrade.
	Writable *obs.Flag
	// IdempotencyCache is how many recent Idempotency-Key responses are
	// kept for replay (0 → DefaultIdempotencyCache, negative → disabled).
	IdempotencyCache int
	// ReadyDetail, when non-nil and returning non-empty, is appended to
	// the /readyz ready body as "ready (<detail>)" — the daemons wire the
	// persist scheduler's failure text here so a snapshot loop going bad
	// is visible on the probe without flipping readiness.
	ReadyDetail func() string
	// Repl, when non-nil, mounts the replication surface (/v1/repl/frames,
	// /v1/repl/status, /v1/promote — see repl.go) and, when Repl.Gate is
	// set, withholds write acks until the follower confirms durability.
	Repl *Repl
	// ReadOnlyDetail, when non-nil, explains WHY writes are refused while
	// Writable is false — it feeds both the write-gate 503 body and the
	// /readyz degraded detail. Nil keeps the WAL-failure wording; a
	// follower daemon wires its role (and live lag) here instead.
	ReadOnlyDetail func() string
}

// NewHandler mounts the tabled API over b:
//
//	POST /v1/batch     batched get/set/resize/dims/stats
//	GET  /v1/stats     backend description + cost counters
//	POST /v1/snapshot  persist now (501 unless configured)
//	GET  /metrics      Prometheus text exposition
//	GET  /healthz      liveness
//	GET  /readyz       readiness (503 while draining)
//
// all behind the obs request middleware (metrics + logging).
func NewHandler(b Backend[string], opt ServerOptions) http.Handler {
	if opt.MaxBatch <= 0 {
		opt.MaxBatch = DefaultMaxBatch
	}
	if opt.MaxBodyBytes == 0 {
		opt.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if opt.BatchTimeout == 0 {
		opt.BatchTimeout = DefaultBatchTimeout
	}
	if opt.WAL != nil && opt.Writable == nil {
		// The server must be able to flip itself read-only on WAL failure.
		opt.Writable = obs.NewFlag(true)
	}
	if opt.ReadOnlyDetail == nil {
		opt.ReadOnlyDetail = func() string { return "read-only (WAL volume failed)" }
	}
	if opt.Repl != nil {
		// A fenced node's refusals should say so — "fenced by epoch N" is
		// actionable (reseed or retire the node); "WAL failed" is not.
		rp, base := opt.Repl, opt.ReadOnlyDetail
		opt.ReadOnlyDetail = func() string {
			if e, ok := rp.FencedBy(); ok {
				return fmt.Sprintf("fenced: a primary at epoch %d exists; reseed required", e)
			}
			return base()
		}
	}
	srv := &server{b: b, opt: opt}
	srv.deg = srvkit.NewDegraded(srvkit.DegradedConfig{
		Detail:     "read-only (WAL volume failed)",
		LogMessage: "wal failure: entering read-only degraded mode",
		Writable:   opt.Writable,
		Gauge:      opt.Metrics.degradedGauge(),
		Logger:     opt.Logger,
	})
	if opt.Repl != nil && opt.Repl.Fence == nil {
		// Self-fencing rides the degraded-mode trip: once a requester
		// proves a newer primary epoch exists, this node stops
		// acknowledging writes even if a client bypasses the router.
		opt.Repl.Fence = srv.degrade
	}
	if opt.IdempotencyCache >= 0 {
		n := opt.IdempotencyCache
		if n == 0 {
			n = DefaultIdempotencyCache
		}
		srv.idem = newIdemCache(n)
	}
	mux := http.NewServeMux()
	// Only /v1/batch sits behind the hardening stack: stats is cheap, and
	// an on-demand snapshot save may legitimately outlast the batch
	// timeout. Probes and metrics are mounted beside the stack so a
	// stalled batch can never starve them.
	mux.Handle("POST /v1/batch", srvkit.APIStack{
		MaxBodyBytes:   opt.MaxBodyBytes,
		RequestTimeout: opt.BatchTimeout,
		TimeoutBody:    "batch timed out",
	}.Wrap(http.HandlerFunc(srv.handleBatch)))
	mux.HandleFunc("GET /v1/stats", srv.handleStats)
	mux.HandleFunc("POST /v1/snapshot", srv.handleSnapshot)
	if opt.Repl != nil {
		opt.Repl.register(mux)
	}
	if opt.Registry != nil {
		mux.Handle("GET /metrics", opt.Registry.Handler())
	}
	// Readiness keys off the Writable flag rather than the trip machine so
	// an externally-flipped flag reads as degraded too — which is also how
	// a follower (writable=false by construction) advertises itself: the
	// checker reads "degraded: <detail>" as routable-for-reads.
	writable := opt.Writable
	srvkit.Probes{
		Ready: opt.Ready,
		Degraded: func() (bool, string) {
			return !writable.Get(), opt.ReadOnlyDetail()
		},
		Detail: opt.ReadyDetail,
	}.Register(mux)
	return obs.Middleware(obs.MiddlewareConfig{
		Registry: opt.Registry,
		Logger:   opt.Logger,
		// Fixed route set: the raw path is safe as a label only because
		// the mux 404s everything else; collapse unknown paths anyway.
		PathLabel: func(r *http.Request) string {
			switch r.URL.Path {
			case "/v1/batch", "/v1/stats", "/v1/snapshot", "/metrics", "/healthz", "/readyz",
				ReplFramesPath, ReplStatusPath, ReplSnapshotPath, PromotePath:
				return r.URL.Path
			}
			return "other"
		},
	}, mux)
}

type server struct {
	b    Backend[string]
	opt  ServerOptions
	deg  *srvkit.Degraded
	idem *idemCache // nil when disabled
}

// IdempotencyKeyHeader carries the client's per-request replay key: a
// server that already answered this key returns the recorded response
// without re-executing (so a retried batch is never applied — or WAL-logged
// — twice).
const IdempotencyKeyHeader = "Idempotency-Key"

// HasWrites reports whether any op mutates the table (set or resize) —
// the same classification the server's read-only gate applies, exported so
// routing layers can keep their write-filtering decisions in lockstep.
func HasWrites(ops []Op) bool {
	for i := range ops {
		if ops[i].Op == "set" || ops[i].Op == "resize" {
			return true
		}
	}
	return false
}

// readOnlyMsg is the write-gate refusal body, carrying the configured
// reason (WAL failure by default; follower role on replicas).
func (s *server) readOnlyMsg() string {
	return "read-only: writes are disabled: " + s.opt.ReadOnlyDetail()
}

// replAck is the semi-synchronous replication gate: a write batch that
// executed and logged locally parks here until the follower's pull
// horizon confirms it is durable remotely too, or the gate times out and
// the ack is refused (503, retryable). No-op without a configured gate or
// for read-only batches — the common path costs one nil check.
func (s *server) replAck(ctx context.Context, ops []Op) error {
	if s.opt.Repl == nil || s.opt.Repl.Gate == nil || s.opt.WAL == nil || !HasWrites(ops) {
		return nil
	}
	// Every record of this batch is ≤ the committed horizon now (Append
	// fsyncs before returning), so waiting for the follower to reach the
	// horizon covers the batch. Concurrent writers can push the horizon a
	// little past it — over-waiting by a few records, never under.
	_, next := s.opt.WAL.SeqState()
	err := s.opt.Repl.Gate.Wait(ctx, next)
	s.opt.Metrics.replAckWait(err != nil)
	return err
}

// refusalMsg phrases a durability refusal for the 503 body.
func refusalMsg(err error) string {
	if errors.Is(err, ErrReplAckTimeout) {
		return "replication unconfirmed, write not acknowledged (durable locally; retry): " + err.Error()
	}
	return "write-ahead log failed, server is now read-only: " + err.Error()
}

// degrade flips the server into read-only mode after a WAL failure: writes
// 503, reads still served, /readyz reporting degraded. The sticky trip
// machine (srvkit.Degraded) never recovers in-process — the WAL cannot
// attest durability anymore, so only a restart (which replays and
// re-opens the log) clears it.
func (s *server) degrade(err error) { s.deg.Degrade(err) }

// wireScratch is the per-request buffer bundle the batch path reuses
// through wirePool: the raw body, decoded ops, execution results, backend
// call buffers, and the outgoing frame. One request borrows exactly one
// scratch, so steady-state binary batches allocate nothing beyond the
// values they store.
type wireScratch struct {
	body    []byte
	ops     []Op
	results []OpResult
	cells   []Cell[string]
	keys    []Pos
	errs    []error
	gets    []GetResult[string]
	out     []byte
}

var wirePool = sync.Pool{New: func() any { return new(wireScratch) }}

// growResults sizes scr.results for n ops, reusing capacity.
func (scr *wireScratch) growResults(n int) []OpResult {
	if cap(scr.results) < n {
		scr.results = make([]OpResult, n)
	}
	scr.results = scr.results[:n]
	clear(scr.results)
	return scr.results
}

// growRun sizes the backend-call buffers for an n-cell run.
func (scr *wireScratch) growRun(n int) {
	if cap(scr.cells) < n {
		scr.cells = make([]Cell[string], n)
		scr.keys = make([]Pos, n)
		scr.errs = make([]error, n)
		scr.gets = make([]GetResult[string], n)
	}
}

// isBinaryContentType reports whether ct selects the binary batch codec
// (parameters after ';' are ignored).
func isBinaryContentType(ct string) bool {
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	return strings.TrimSpace(ct) == ContentTypeBinary
}

// readBody reads r into buf[:0] (growing as needed) up to the byte cap
// already imposed by the MaxBytesReader wrapping r.
func readBody(buf []byte, r io.Reader) ([]byte, error) {
	buf = buf[:0]
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

// handleBatch serves one /v1/batch request. The body cap and request
// timeout are already in place — srvkit.APIStack wraps this handler — so
// r.Body is a MaxBytesReader and overruns surface as *http.MaxBytesError.
func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if isBinaryContentType(r.Header.Get("Content-Type")) {
		s.handleBatchBinary(w, r)
		return
	}
	var req BatchRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			http.Error(w, fmt.Sprintf("request body exceeds %d bytes", mbe.Limit),
				http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Ops) == 0 {
		http.Error(w, "bad request: empty batch", http.StatusBadRequest)
		return
	}
	if len(req.Ops) > s.opt.MaxBatch {
		http.Error(w, fmt.Sprintf("bad request: batch of %d exceeds limit %d",
			len(req.Ops), s.opt.MaxBatch), http.StatusBadRequest)
		return
	}
	if !s.opt.Writable.Get() && HasWrites(req.Ops) {
		http.Error(w, s.readOnlyMsg(), http.StatusServiceUnavailable)
		return
	}
	key := r.Header.Get(IdempotencyKeyHeader)
	if s.replayIdempotent(w, key) {
		return
	}
	scr := wirePool.Get().(*wireScratch)
	defer wirePool.Put(scr)
	results, walErr := s.executeInto(req.Ops, scr)
	if walErr == nil {
		walErr = s.replAck(r.Context(), req.Ops)
	}
	if walErr != nil {
		// The batch was applied in memory but could not be made durable
		// (or durably replicated): refuse the ack. The client retries and
		// either lands on the read-only gate above or re-executes
		// idempotently once replication catches up.
		http.Error(w, refusalMsg(walErr), http.StatusServiceUnavailable)
		return
	}
	resp := BatchResponse{Results: results}
	body, err := json.Marshal(&resp)
	if err != nil {
		http.Error(w, "encoding response: "+err.Error(), http.StatusInternalServerError)
		return
	}
	if s.idem != nil && key != "" {
		s.idem.put(key, "application/json", body)
	}
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(body); err != nil && s.opt.Logger != nil {
		s.opt.Logger.Warn("batch: write", "err", err)
	}
}

// replayIdempotent answers a retransmitted batch from the idempotency
// cache, reporting whether it did. The recorded response is replayed with
// the content type it was first produced under — a client that retries a
// batch keeps its wire format across retries.
func (s *server) replayIdempotent(w http.ResponseWriter, key string) bool {
	if s.idem == nil || key == "" {
		return false
	}
	ct, body, ok := s.idem.get(key)
	if !ok {
		return false
	}
	// A retransmit of a batch we already executed and acknowledged
	// (the ack was lost in flight): replay the recorded response.
	s.opt.Metrics.idempotentReplay()
	w.Header().Set("Content-Type", ct)
	w.Header().Set("Idempotent-Replay", "true")
	_, _ = w.Write(body)
	return true
}

// handleBatchBinary is the application/x-tabled-batch arm of /v1/batch:
// one pooled scratch carries the request body, decoded ops, execution
// buffers and the response frame end to end, so a steady-state batch
// allocates only the values it stores (set values are cloned out of the
// pooled body — everything else aliases or reuses scratch).
func (s *server) handleBatchBinary(w http.ResponseWriter, r *http.Request) {
	scr := wirePool.Get().(*wireScratch)
	defer wirePool.Put(scr)
	body, err := readBody(scr.body, r.Body)
	scr.body = body
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			http.Error(w, fmt.Sprintf("request body exceeds %d bytes", mbe.Limit),
				http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "reading request: "+err.Error(), http.StatusBadRequest)
		return
	}
	key := r.Header.Get(IdempotencyKeyHeader)
	if s.replayIdempotent(w, key) {
		return
	}
	out, status, msg := s.batchBinary(body, scr)
	if status == http.StatusOK {
		if err := s.replAck(r.Context(), scr.ops); err != nil {
			status, msg = http.StatusServiceUnavailable, refusalMsg(err)
		}
	}
	if status != http.StatusOK {
		http.Error(w, msg, status)
		return
	}
	if s.idem != nil && key != "" {
		// The frame lives in pooled scratch; the cache needs its own copy.
		s.idem.put(key, ContentTypeBinary, append([]byte(nil), out...))
	}
	w.Header().Set("Content-Type", ContentTypeBinary)
	if _, err := w.Write(out); err != nil && s.opt.Logger != nil {
		s.opt.Logger.Warn("batch: write", "err", err)
	}
}

// batchBinary decodes, validates, executes and re-encodes one binary batch
// body using scr throughout. On success it returns the response frame
// (aliasing scr.out) and 200; otherwise the status and message for
// http.Error. Factored off the HTTP handler so the allocation guardrail
// test can pin the whole server-side batch path without the net/http
// layer's own bookkeeping.
func (s *server) batchBinary(body []byte, scr *wireScratch) (out []byte, status int, msg string) {
	ops, err := DecodeBatchRequest(body, scr.ops, s.opt.MaxBatch)
	if err != nil {
		return nil, http.StatusBadRequest, "bad request: " + err.Error()
	}
	scr.ops = ops
	if len(ops) == 0 {
		return nil, http.StatusBadRequest, "bad request: empty batch"
	}
	if !s.opt.Writable.Get() && HasWrites(ops) {
		return nil, http.StatusServiceUnavailable, s.readOnlyMsg()
	}
	// Decoded set values alias the pooled request body, which the next
	// request will overwrite; anything the table retains must own its
	// bytes. This clone is the binary set path's one allocation per op.
	for i := range ops {
		if ops[i].Op == "set" {
			ops[i].V = strings.Clone(ops[i].V)
		}
	}
	results, walErr := s.executeInto(ops, scr)
	if walErr != nil {
		return nil, http.StatusServiceUnavailable, refusalMsg(walErr)
	}
	out, err = AppendBatchResponse(scr.out[:0], results)
	if err != nil {
		return nil, http.StatusInternalServerError, "encoding response: " + err.Error()
	}
	scr.out = out
	return out, http.StatusOK, ""
}

// executeInto runs ops in request order, fusing maximal runs of
// consecutive gets (resp. sets) into one batched backend call so a
// homogeneous batch pays one lock acquisition per touched shard, not per
// cell. All working storage comes from scr; the returned results alias
// scr.results and are valid until scr is reused. When a WAL is configured,
// each applied set run (its successful cells) and each applied resize is
// logged and fsynced before executeInto returns; a non-nil walErr means
// durability was lost mid-batch and the caller must not acknowledge.
func (s *server) executeInto(ops []Op, scr *wireScratch) (results []OpResult, walErr error) {
	results = scr.growResults(len(ops))
	bi, batchInto := s.b.(BatchInto[string])
	for i := 0; i < len(ops); {
		j := i + 1
		for (ops[i].Op == "get" || ops[i].Op == "set") && j < len(ops) && ops[j].Op == ops[i].Op {
			j++
		}
		start := time.Now()
		failed := false
		switch ops[i].Op {
		case "set":
			scr.growRun(j - i)
			cells := scr.cells[:j-i]
			for k := i; k < j; k++ {
				cells[k-i] = Cell[string]{X: ops[k].X, Y: ops[k].Y, V: ops[k].V}
			}
			var errs []error
			if batchInto {
				errs = scr.errs[:j-i]
				bi.SetBatchInto(cells, errs)
			} else {
				errs = s.b.SetBatch(cells)
			}
			acked := cells[:0]
			for k, err := range errs {
				if err != nil {
					results[i+k] = OpResult{Err: err.Error()}
					failed = true
				} else {
					results[i+k] = OpResult{OK: true}
					acked = append(acked, cells[k])
				}
			}
			if s.opt.WAL != nil && len(acked) > 0 {
				if err := s.opt.WAL.AppendSet(acked); err != nil {
					s.degrade(err)
					s.opt.Metrics.op(ops[i].Op, j-i, time.Since(start), true)
					return results, err
				}
			}
		case "get":
			scr.growRun(j - i)
			keys := scr.keys[:j-i]
			for k := i; k < j; k++ {
				keys[k-i] = Pos{X: ops[k].X, Y: ops[k].Y}
			}
			var gets []GetResult[string]
			if batchInto {
				gets = scr.gets[:j-i]
				bi.GetBatchInto(keys, gets)
			} else {
				gets = s.b.GetBatch(keys)
			}
			for k, gr := range gets {
				if gr.Err != nil {
					results[i+k] = OpResult{Err: gr.Err.Error()}
					failed = true
				} else {
					results[i+k] = OpResult{OK: true, Found: gr.OK, V: gr.V}
				}
			}
		case "resize":
			if err := s.b.Resize(ops[i].Rows, ops[i].Cols); err != nil {
				results[i] = OpResult{Err: err.Error()}
				failed = true
			} else {
				results[i] = OpResult{OK: true}
				if s.opt.WAL != nil {
					if err := s.opt.WAL.AppendResize(ops[i].Rows, ops[i].Cols); err != nil {
						s.degrade(err)
						s.opt.Metrics.op(ops[i].Op, 1, time.Since(start), true)
						return results, err
					}
				}
			}
		case "dims":
			rows, cols := s.b.Dims()
			results[i] = OpResult{OK: true, Rows: rows, Cols: cols}
		case "stats":
			st := s.b.Stats()
			results[i] = OpResult{OK: true, Stats: &st}
		default:
			// Unknown kinds still flow through Metrics.op, whose nil-safe
			// metric lookups make unregistered labels a silent no-op.
			results[i] = OpResult{Err: fmt.Sprintf("unknown op %q", ops[i].Op)}
			failed = true
		}
		s.opt.Metrics.op(ops[i].Op, j-i, time.Since(start), failed)
		i = j
	}
	return results, nil
}

// idemEntry is one recorded response: its body plus the content type it
// was produced under, so a binary batch replays as binary and a JSON one
// as JSON.
type idemEntry struct {
	ct   string
	body []byte
}

// idemCache is a bounded FIFO map of Idempotency-Key → recorded response.
// Lookup-then-execute is not atomic, so two concurrent requests with
// the same key can both execute — acceptable, because batch ops are
// value-idempotent; the cache exists to keep *sequential* retries (the
// common lost-ack case) from re-executing and double-logging.
type idemCache struct {
	mu    sync.Mutex
	max   int
	m     map[string]idemEntry
	order []string
}

func newIdemCache(max int) *idemCache {
	return &idemCache{max: max, m: make(map[string]idemEntry, max)}
}

func (c *idemCache) get(key string) (ct string, body []byte, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[key]
	return e.ct, e.body, ok
}

func (c *idemCache) put(key, ct string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[key]; ok {
		return
	}
	for len(c.m) >= c.max && len(c.order) > 0 {
		delete(c.m, c.order[0])
		c.order = c.order[1:]
	}
	c.m[key] = idemEntry{ct: ct, body: body}
	c.order = append(c.order, key)
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	rows, cols := s.b.Dims()
	reply := StatsReply{Info: s.b.Describe(), Rows: rows, Cols: cols, Stats: s.b.Stats()}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(&reply); err != nil && s.opt.Logger != nil {
		s.opt.Logger.Warn("stats: encode", "err", err)
	}
}

func (s *server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	if s.opt.Snapshot == nil {
		http.Error(w, "snapshots not configured", http.StatusNotImplemented)
		return
	}
	start := time.Now()
	err := s.opt.Snapshot()
	s.opt.Metrics.snapshot(time.Since(start), err)
	if err != nil {
		http.Error(w, "snapshot: "+err.Error(), http.StatusInternalServerError)
		return
	}
	fmt.Fprintln(w, "ok")
}

// ErrRemote wraps an error string returned by the server in a batch
// result, so client callers can distinguish transport failures from per-op
// failures.
var ErrRemote = errors.New("tabled: remote error")
