package tabled

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"time"

	"pairfn/internal/extarray"
	"pairfn/internal/obs"
)

// DefaultMaxBatch caps the ops accepted in one /v1/batch request.
const DefaultMaxBatch = 4096

// An Op is one operation in a batch request. Exactly the fields its kind
// needs are consulted:
//
//	{"op":"set", "x":1, "y":2, "v":"payload"}
//	{"op":"get", "x":1, "y":2}
//	{"op":"resize", "rows":100, "cols":200}
//	{"op":"dims"}
//	{"op":"stats"}
type Op struct {
	Op   string `json:"op"`
	X    int64  `json:"x,omitempty"`
	Y    int64  `json:"y,omitempty"`
	V    string `json:"v,omitempty"`
	Rows int64  `json:"rows,omitempty"`
	Cols int64  `json:"cols,omitempty"`
}

// An OpResult is the outcome of one Op, in request order.
type OpResult struct {
	OK    bool            `json:"ok"`
	Found bool            `json:"found,omitempty"`
	V     string          `json:"v,omitempty"`
	Rows  int64           `json:"rows,omitempty"`
	Cols  int64           `json:"cols,omitempty"`
	Stats *extarray.Stats `json:"stats,omitempty"`
	Err   string          `json:"error,omitempty"`
}

// BatchRequest is the body of POST /v1/batch.
type BatchRequest struct {
	Ops []Op `json:"ops"`
}

// BatchResponse is its reply.
type BatchResponse struct {
	Results []OpResult `json:"results"`
}

// StatsReply is the body of GET /v1/stats.
type StatsReply struct {
	Info  Info           `json:"info"`
	Rows  int64          `json:"rows"`
	Cols  int64          `json:"cols"`
	Stats extarray.Stats `json:"stats"`
}

// ServerOptions configures NewHandler.
type ServerOptions struct {
	// Registry receives request and tabled metrics; nil disables both.
	Registry *obs.Registry
	// Metrics is the batch/shard instrumentation bundle (may be nil).
	Metrics *Metrics
	// Logger, when non-nil, logs one line per request.
	Logger *slog.Logger
	// Ready gates /readyz (nil reads as always ready).
	Ready *obs.Flag
	// MaxBatch caps ops per request (0 → DefaultMaxBatch).
	MaxBatch int
	// Snapshot, when non-nil, is invoked by POST /v1/snapshot. Backends
	// without snapshot support leave it nil and the endpoint returns 501.
	Snapshot func() error
}

// NewHandler mounts the tabled API over b:
//
//	POST /v1/batch     batched get/set/resize/dims/stats
//	GET  /v1/stats     backend description + cost counters
//	POST /v1/snapshot  persist now (501 unless configured)
//	GET  /metrics      Prometheus text exposition
//	GET  /healthz      liveness
//	GET  /readyz       readiness (503 while draining)
//
// all behind the obs request middleware (metrics + logging).
func NewHandler(b Backend[string], opt ServerOptions) http.Handler {
	if opt.MaxBatch <= 0 {
		opt.MaxBatch = DefaultMaxBatch
	}
	srv := &server{b: b, opt: opt}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/batch", srv.handleBatch)
	mux.HandleFunc("GET /v1/stats", srv.handleStats)
	mux.HandleFunc("POST /v1/snapshot", srv.handleSnapshot)
	if opt.Registry != nil {
		mux.Handle("GET /metrics", opt.Registry.Handler())
	}
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	ready := opt.Ready
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if !ready.Get() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	return obs.Middleware(obs.MiddlewareConfig{
		Registry: opt.Registry,
		Logger:   opt.Logger,
		// Fixed route set: the raw path is safe as a label only because
		// the mux 404s everything else; collapse unknown paths anyway.
		PathLabel: func(r *http.Request) string {
			switch r.URL.Path {
			case "/v1/batch", "/v1/stats", "/v1/snapshot", "/metrics", "/healthz", "/readyz":
				return r.URL.Path
			}
			return "other"
		},
	}, mux)
}

type server struct {
	b   Backend[string]
	opt ServerOptions
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Ops) == 0 {
		http.Error(w, "bad request: empty batch", http.StatusBadRequest)
		return
	}
	if len(req.Ops) > s.opt.MaxBatch {
		http.Error(w, fmt.Sprintf("bad request: batch of %d exceeds limit %d",
			len(req.Ops), s.opt.MaxBatch), http.StatusBadRequest)
		return
	}
	resp := BatchResponse{Results: s.execute(req.Ops)}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(&resp); err != nil && s.opt.Logger != nil {
		s.opt.Logger.Warn("batch: encode", "err", err)
	}
}

// execute runs ops in request order, fusing maximal runs of consecutive
// gets (resp. sets) into one batched backend call so a homogeneous batch
// pays one lock acquisition per touched shard, not per cell.
func (s *server) execute(ops []Op) []OpResult {
	results := make([]OpResult, len(ops))
	for i := 0; i < len(ops); {
		j := i + 1
		for (ops[i].Op == "get" || ops[i].Op == "set") && j < len(ops) && ops[j].Op == ops[i].Op {
			j++
		}
		start := time.Now()
		failed := false
		switch ops[i].Op {
		case "set":
			cells := make([]Cell[string], j-i)
			for k := i; k < j; k++ {
				cells[k-i] = Cell[string]{X: ops[k].X, Y: ops[k].Y, V: ops[k].V}
			}
			for k, err := range s.b.SetBatch(cells) {
				if err != nil {
					results[i+k] = OpResult{Err: err.Error()}
					failed = true
				} else {
					results[i+k] = OpResult{OK: true}
				}
			}
		case "get":
			keys := make([]Pos, j-i)
			for k := i; k < j; k++ {
				keys[k-i] = Pos{X: ops[k].X, Y: ops[k].Y}
			}
			for k, gr := range s.b.GetBatch(keys) {
				if gr.Err != nil {
					results[i+k] = OpResult{Err: gr.Err.Error()}
					failed = true
				} else {
					results[i+k] = OpResult{OK: true, Found: gr.OK, V: gr.V}
				}
			}
		case "resize":
			if err := s.b.Resize(ops[i].Rows, ops[i].Cols); err != nil {
				results[i] = OpResult{Err: err.Error()}
				failed = true
			} else {
				results[i] = OpResult{OK: true}
			}
		case "dims":
			rows, cols := s.b.Dims()
			results[i] = OpResult{OK: true, Rows: rows, Cols: cols}
		case "stats":
			st := s.b.Stats()
			results[i] = OpResult{OK: true, Stats: &st}
		default:
			// Unknown kinds still flow through Metrics.op, whose nil-safe
			// metric lookups make unregistered labels a silent no-op.
			results[i] = OpResult{Err: fmt.Sprintf("unknown op %q", ops[i].Op)}
			failed = true
		}
		s.opt.Metrics.op(ops[i].Op, j-i, time.Since(start), failed)
		i = j
	}
	return results
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	rows, cols := s.b.Dims()
	reply := StatsReply{Info: s.b.Describe(), Rows: rows, Cols: cols, Stats: s.b.Stats()}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(&reply); err != nil && s.opt.Logger != nil {
		s.opt.Logger.Warn("stats: encode", "err", err)
	}
}

func (s *server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	if s.opt.Snapshot == nil {
		http.Error(w, "snapshots not configured", http.StatusNotImplemented)
		return
	}
	start := time.Now()
	err := s.opt.Snapshot()
	s.opt.Metrics.snapshot(time.Since(start), err)
	if err != nil {
		http.Error(w, "snapshot: "+err.Error(), http.StatusInternalServerError)
		return
	}
	fmt.Fprintln(w, "ok")
}

// ErrRemote wraps an error string returned by the server in a batch
// result, so client callers can distinguish transport failures from per-op
// failures.
var ErrRemote = errors.New("tabled: remote error")
