package tabled

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"pairfn/internal/extarray"
	"pairfn/internal/obs"
)

// DefaultMaxBatch caps the ops accepted in one /v1/batch request.
const DefaultMaxBatch = 4096

// DefaultMaxBodyBytes caps the /v1/batch request body (http.MaxBytesReader).
const DefaultMaxBodyBytes = 4 << 20

// DefaultBatchTimeout bounds one /v1/batch request end to end; a handler
// that overruns it is abandoned and the client sees a 503.
const DefaultBatchTimeout = 30 * time.Second

// DefaultIdempotencyCache is how many recent Idempotency-Key responses the
// server retains for replay.
const DefaultIdempotencyCache = 4096

// An Op is one operation in a batch request. Exactly the fields its kind
// needs are consulted:
//
//	{"op":"set", "x":1, "y":2, "v":"payload"}
//	{"op":"get", "x":1, "y":2}
//	{"op":"resize", "rows":100, "cols":200}
//	{"op":"dims"}
//	{"op":"stats"}
type Op struct {
	Op   string `json:"op"`
	X    int64  `json:"x,omitempty"`
	Y    int64  `json:"y,omitempty"`
	V    string `json:"v,omitempty"`
	Rows int64  `json:"rows,omitempty"`
	Cols int64  `json:"cols,omitempty"`
}

// An OpResult is the outcome of one Op, in request order.
type OpResult struct {
	OK    bool            `json:"ok"`
	Found bool            `json:"found,omitempty"`
	V     string          `json:"v,omitempty"`
	Rows  int64           `json:"rows,omitempty"`
	Cols  int64           `json:"cols,omitempty"`
	Stats *extarray.Stats `json:"stats,omitempty"`
	Err   string          `json:"error,omitempty"`
}

// BatchRequest is the body of POST /v1/batch.
type BatchRequest struct {
	Ops []Op `json:"ops"`
}

// BatchResponse is its reply.
type BatchResponse struct {
	Results []OpResult `json:"results"`
}

// StatsReply is the body of GET /v1/stats.
type StatsReply struct {
	Info  Info           `json:"info"`
	Rows  int64          `json:"rows"`
	Cols  int64          `json:"cols"`
	Stats extarray.Stats `json:"stats"`
}

// ServerOptions configures NewHandler.
type ServerOptions struct {
	// Registry receives request and tabled metrics; nil disables both.
	Registry *obs.Registry
	// Metrics is the batch/shard instrumentation bundle (may be nil).
	Metrics *Metrics
	// Logger, when non-nil, logs one line per request.
	Logger *slog.Logger
	// Ready gates /readyz (nil reads as always ready).
	Ready *obs.Flag
	// MaxBatch caps ops per request (0 → DefaultMaxBatch).
	MaxBatch int
	// MaxBodyBytes caps the /v1/batch request body; oversized requests get
	// a 413 (0 → DefaultMaxBodyBytes).
	MaxBodyBytes int64
	// BatchTimeout bounds one /v1/batch request; overruns get a 503
	// (0 → DefaultBatchTimeout, negative → no timeout).
	BatchTimeout time.Duration
	// Snapshot, when non-nil, is invoked by POST /v1/snapshot. Backends
	// without snapshot support leave it nil and the endpoint returns 501.
	// With a WAL configured, this should checkpoint through WAL.Checkpoint
	// so the log is reset under the same cut as the snapshot.
	Snapshot func() error
	// WAL, when non-nil, receives every acknowledged set/resize before the
	// HTTP response is written: the durability contract is "200 implies
	// fsynced". A WAL failure flips the server into read-only degraded
	// mode (Writable goes false) instead of killing it.
	WAL *WAL
	// Writable gates write ops (set/resize): while false they get a 503
	// and /readyz reports degraded; reads keep working. Nil reads as
	// always-writable unless a WAL is configured, in which case NewHandler
	// installs a flag so it can degrade.
	Writable *obs.Flag
	// IdempotencyCache is how many recent Idempotency-Key responses are
	// kept for replay (0 → DefaultIdempotencyCache, negative → disabled).
	IdempotencyCache int
}

// NewHandler mounts the tabled API over b:
//
//	POST /v1/batch     batched get/set/resize/dims/stats
//	GET  /v1/stats     backend description + cost counters
//	POST /v1/snapshot  persist now (501 unless configured)
//	GET  /metrics      Prometheus text exposition
//	GET  /healthz      liveness
//	GET  /readyz       readiness (503 while draining)
//
// all behind the obs request middleware (metrics + logging).
func NewHandler(b Backend[string], opt ServerOptions) http.Handler {
	if opt.MaxBatch <= 0 {
		opt.MaxBatch = DefaultMaxBatch
	}
	if opt.MaxBodyBytes == 0 {
		opt.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if opt.BatchTimeout == 0 {
		opt.BatchTimeout = DefaultBatchTimeout
	}
	if opt.WAL != nil && opt.Writable == nil {
		// The server must be able to flip itself read-only on WAL failure.
		opt.Writable = obs.NewFlag(true)
	}
	srv := &server{b: b, opt: opt}
	if opt.IdempotencyCache >= 0 {
		n := opt.IdempotencyCache
		if n == 0 {
			n = DefaultIdempotencyCache
		}
		srv.idem = newIdemCache(n)
	}
	mux := http.NewServeMux()
	var batch http.Handler = http.HandlerFunc(srv.handleBatch)
	if opt.BatchTimeout > 0 {
		batch = http.TimeoutHandler(batch, opt.BatchTimeout, "batch timed out")
	}
	mux.Handle("POST /v1/batch", batch)
	mux.HandleFunc("GET /v1/stats", srv.handleStats)
	mux.HandleFunc("POST /v1/snapshot", srv.handleSnapshot)
	if opt.Registry != nil {
		mux.Handle("GET /metrics", opt.Registry.Handler())
	}
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	ready, writable := opt.Ready, opt.Writable
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if !ready.Get() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		if !writable.Get() {
			http.Error(w, "degraded: read-only (WAL volume failed)", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	return obs.Middleware(obs.MiddlewareConfig{
		Registry: opt.Registry,
		Logger:   opt.Logger,
		// Fixed route set: the raw path is safe as a label only because
		// the mux 404s everything else; collapse unknown paths anyway.
		PathLabel: func(r *http.Request) string {
			switch r.URL.Path {
			case "/v1/batch", "/v1/stats", "/v1/snapshot", "/metrics", "/healthz", "/readyz":
				return r.URL.Path
			}
			return "other"
		},
	}, mux)
}

type server struct {
	b    Backend[string]
	opt  ServerOptions
	idem *idemCache // nil when disabled
}

// IdempotencyKeyHeader carries the client's per-request replay key: a
// server that already answered this key returns the recorded response
// without re-executing (so a retried batch is never applied — or WAL-logged
// — twice).
const IdempotencyKeyHeader = "Idempotency-Key"

// hasWrites reports whether any op mutates the table.
func hasWrites(ops []Op) bool {
	for i := range ops {
		if ops[i].Op == "set" || ops[i].Op == "resize" {
			return true
		}
	}
	return false
}

// degrade flips the server into read-only mode after a WAL failure: writes
// 503, reads still served, /readyz reporting degraded. It never recovers
// in-process — the WAL cannot attest durability anymore, so only a restart
// (which replays and re-opens the log) clears it.
func (s *server) degrade(err error) {
	s.opt.Writable.Set(false)
	s.opt.Metrics.setDegraded(true)
	if s.opt.Logger != nil {
		s.opt.Logger.Error("wal failure: entering read-only degraded mode", "err", err)
	}
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.opt.MaxBodyBytes)
	var req BatchRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			http.Error(w, fmt.Sprintf("request body exceeds %d bytes", mbe.Limit),
				http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Ops) == 0 {
		http.Error(w, "bad request: empty batch", http.StatusBadRequest)
		return
	}
	if len(req.Ops) > s.opt.MaxBatch {
		http.Error(w, fmt.Sprintf("bad request: batch of %d exceeds limit %d",
			len(req.Ops), s.opt.MaxBatch), http.StatusBadRequest)
		return
	}
	if !s.opt.Writable.Get() && hasWrites(req.Ops) {
		http.Error(w, "read-only: WAL volume failed, writes are disabled", http.StatusServiceUnavailable)
		return
	}
	key := r.Header.Get(IdempotencyKeyHeader)
	if s.idem != nil && key != "" {
		if body, ok := s.idem.get(key); ok {
			// A retransmit of a batch we already executed and acknowledged
			// (the ack was lost in flight): replay the recorded response.
			s.opt.Metrics.idempotentReplay()
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Idempotent-Replay", "true")
			_, _ = w.Write(body)
			return
		}
	}
	results, walErr := s.execute(req.Ops)
	if walErr != nil {
		// The batch was applied in memory but could not be made durable:
		// refuse the ack. The client retries and lands on the read-only
		// gate above.
		http.Error(w, "write-ahead log failed, server is now read-only: "+walErr.Error(),
			http.StatusServiceUnavailable)
		return
	}
	resp := BatchResponse{Results: results}
	body, err := json.Marshal(&resp)
	if err != nil {
		http.Error(w, "encoding response: "+err.Error(), http.StatusInternalServerError)
		return
	}
	if s.idem != nil && key != "" {
		s.idem.put(key, body)
	}
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(body); err != nil && s.opt.Logger != nil {
		s.opt.Logger.Warn("batch: write", "err", err)
	}
}

// execute runs ops in request order, fusing maximal runs of consecutive
// gets (resp. sets) into one batched backend call so a homogeneous batch
// pays one lock acquisition per touched shard, not per cell. When a WAL is
// configured, each applied set run (its successful cells) and each applied
// resize is logged and fsynced before execute returns; a non-nil walErr
// means durability was lost mid-batch and the caller must not acknowledge.
func (s *server) execute(ops []Op) (results []OpResult, walErr error) {
	results = make([]OpResult, len(ops))
	for i := 0; i < len(ops); {
		j := i + 1
		for (ops[i].Op == "get" || ops[i].Op == "set") && j < len(ops) && ops[j].Op == ops[i].Op {
			j++
		}
		start := time.Now()
		failed := false
		switch ops[i].Op {
		case "set":
			cells := make([]Cell[string], j-i)
			for k := i; k < j; k++ {
				cells[k-i] = Cell[string]{X: ops[k].X, Y: ops[k].Y, V: ops[k].V}
			}
			acked := cells[:0]
			for k, err := range s.b.SetBatch(cells) {
				if err != nil {
					results[i+k] = OpResult{Err: err.Error()}
					failed = true
				} else {
					results[i+k] = OpResult{OK: true}
					acked = append(acked, cells[k])
				}
			}
			if s.opt.WAL != nil && len(acked) > 0 {
				if err := s.opt.WAL.AppendSet(acked); err != nil {
					s.degrade(err)
					s.opt.Metrics.op(ops[i].Op, j-i, time.Since(start), true)
					return results, err
				}
			}
		case "get":
			keys := make([]Pos, j-i)
			for k := i; k < j; k++ {
				keys[k-i] = Pos{X: ops[k].X, Y: ops[k].Y}
			}
			for k, gr := range s.b.GetBatch(keys) {
				if gr.Err != nil {
					results[i+k] = OpResult{Err: gr.Err.Error()}
					failed = true
				} else {
					results[i+k] = OpResult{OK: true, Found: gr.OK, V: gr.V}
				}
			}
		case "resize":
			if err := s.b.Resize(ops[i].Rows, ops[i].Cols); err != nil {
				results[i] = OpResult{Err: err.Error()}
				failed = true
			} else {
				results[i] = OpResult{OK: true}
				if s.opt.WAL != nil {
					if err := s.opt.WAL.AppendResize(ops[i].Rows, ops[i].Cols); err != nil {
						s.degrade(err)
						s.opt.Metrics.op(ops[i].Op, 1, time.Since(start), true)
						return results, err
					}
				}
			}
		case "dims":
			rows, cols := s.b.Dims()
			results[i] = OpResult{OK: true, Rows: rows, Cols: cols}
		case "stats":
			st := s.b.Stats()
			results[i] = OpResult{OK: true, Stats: &st}
		default:
			// Unknown kinds still flow through Metrics.op, whose nil-safe
			// metric lookups make unregistered labels a silent no-op.
			results[i] = OpResult{Err: fmt.Sprintf("unknown op %q", ops[i].Op)}
			failed = true
		}
		s.opt.Metrics.op(ops[i].Op, j-i, time.Since(start), failed)
		i = j
	}
	return results, nil
}

// idemCache is a bounded FIFO map of Idempotency-Key → recorded response
// body. Lookup-then-execute is not atomic, so two concurrent requests with
// the same key can both execute — acceptable, because batch ops are
// value-idempotent; the cache exists to keep *sequential* retries (the
// common lost-ack case) from re-executing and double-logging.
type idemCache struct {
	mu    sync.Mutex
	max   int
	m     map[string][]byte
	order []string
}

func newIdemCache(max int) *idemCache {
	return &idemCache{max: max, m: make(map[string][]byte, max)}
}

func (c *idemCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.m[key]
	return b, ok
}

func (c *idemCache) put(key string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[key]; ok {
		return
	}
	for len(c.m) >= c.max && len(c.order) > 0 {
		delete(c.m, c.order[0])
		c.order = c.order[1:]
	}
	c.m[key] = body
	c.order = append(c.order, key)
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	rows, cols := s.b.Dims()
	reply := StatsReply{Info: s.b.Describe(), Rows: rows, Cols: cols, Stats: s.b.Stats()}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(&reply); err != nil && s.opt.Logger != nil {
		s.opt.Logger.Warn("stats: encode", "err", err)
	}
}

func (s *server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	if s.opt.Snapshot == nil {
		http.Error(w, "snapshots not configured", http.StatusNotImplemented)
		return
	}
	start := time.Now()
	err := s.opt.Snapshot()
	s.opt.Metrics.snapshot(time.Since(start), err)
	if err != nil {
		http.Error(w, "snapshot: "+err.Error(), http.StatusInternalServerError)
		return
	}
	fmt.Fprintln(w, "ok")
}

// ErrRemote wraps an error string returned by the server in a batch
// result, so client callers can distinguish transport failures from per-op
// failures.
var ErrRemote = errors.New("tabled: remote error")
