package tabled

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pairfn/internal/core"
	"pairfn/internal/obs"
	"pairfn/internal/retry"
)

// newWALServer builds a full server with a WAL whose file handle is wrapped
// by fi (nil → no faults), returning the client and registry.
func newWALServer(t *testing.T, fi *FaultInjector, extra func(*ServerOptions)) (*Client, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	m := NewMetrics(reg, 4)
	table, err := NewSharded[string](core.SquareShell{}, 4, pagedStore, 64, 64, m)
	if err != nil {
		t.Fatal(err)
	}
	wal, _, err := OpenWAL(filepath.Join(t.TempDir(), "table.wal"),
		func(rec WALRecord) error { return ApplyWALRecord(table, rec) },
		WALOptions{Metrics: m, WrapFile: fi.WrapWALFile})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { wal.Close() })
	opt := ServerOptions{Registry: reg, Metrics: m, Ready: obs.NewFlag(true), WAL: wal}
	if extra != nil {
		extra(&opt)
	}
	ts := httptest.NewServer(NewHandler(table, opt))
	t.Cleanup(ts.Close)
	return &Client{Base: ts.URL, HTTP: ts.Client()}, reg
}

func httpGet(t *testing.T, c *Client, path string) (int, string) {
	t.Helper()
	resp, err := c.HTTP.Get(c.Base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

// TestServerDegradedMode is the end-to-end degraded-mode contract: a WAL
// sync failure refuses the write's ack, flips the server read-only (writes
// 503, reads 200, /readyz 503, tabled_degraded=1) instead of killing it.
func TestServerDegradedMode(t *testing.T) {
	fi := NewFaultInjector(&Faults{Seed: 1, SyncErrRate: 1})
	c, _ := newWALServer(t, fi, nil)
	ctx := context.Background()

	err := c.Set(ctx, Cell[string]{X: 1, Y: 1, V: "doomed"})
	if err == nil {
		t.Fatal("write acked despite WAL sync failure")
	}
	if !errors.Is(err, ErrRemote) || !strings.Contains(err.Error(), "503") {
		t.Fatalf("first write after WAL failure: %v, want a 503", err)
	}

	// Subsequent writes hit the read-only gate before touching the backend.
	err = c.Set(ctx, Cell[string]{X: 2, Y: 2, V: "rejected"})
	if err == nil || !strings.Contains(err.Error(), "read-only") {
		t.Fatalf("degraded write: %v, want read-only 503", err)
	}

	// Reads keep working (the unacked first write is visible in memory —
	// it was applied before the log failed; it would be truncated as a
	// torn/absent tail on restart, which is allowed for unacked writes).
	if _, _, err := c.Get(ctx, 5, 5); err != nil {
		t.Fatalf("read while degraded: %v", err)
	}
	if _, _, err := c.Dims(ctx); err != nil {
		t.Fatalf("dims while degraded: %v", err)
	}

	if code, body := httpGet(t, c, "/readyz"); code != http.StatusServiceUnavailable ||
		!strings.Contains(body, "degraded") {
		t.Fatalf("/readyz while degraded: %d %q", code, body)
	}
	if _, body := httpGet(t, c, "/metrics"); !strings.Contains(body, "tabled_degraded 1") {
		t.Fatal("/metrics missing tabled_degraded 1")
	}
}

// TestServerIdempotentReplay: the same Idempotency-Key twice executes once;
// the retransmit gets the recorded response with the replay header.
func TestServerIdempotentReplay(t *testing.T) {
	c, _ := newWALServer(t, nil, nil)

	body := []byte(`{"ops":[{"op":"set","x":3,"y":3,"v":"once"}]}`)
	post := func() *http.Response {
		req, err := http.NewRequest(http.MethodPost, c.Base+"/v1/batch", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(IdempotencyKeyHeader, "test-key-1")
		resp, err := c.HTTP.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	r1 := post()
	b1, _ := io.ReadAll(r1.Body)
	r1.Body.Close()
	if r1.StatusCode != http.StatusOK || r1.Header.Get("Idempotent-Replay") != "" {
		t.Fatalf("first request: %d, replay=%q", r1.StatusCode, r1.Header.Get("Idempotent-Replay"))
	}
	r2 := post()
	b2, _ := io.ReadAll(r2.Body)
	r2.Body.Close()
	if r2.StatusCode != http.StatusOK || r2.Header.Get("Idempotent-Replay") != "true" {
		t.Fatalf("replayed request: %d, replay=%q", r2.StatusCode, r2.Header.Get("Idempotent-Replay"))
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("replayed body differs: %s vs %s", b1, b2)
	}

	// Executed exactly once: one set op, one WAL append, one replay hit.
	_, metrics := httpGet(t, c, "/metrics")
	for _, want := range []string{
		`tabled_ops_total{op="set"} 1`,
		"tabled_wal_appends_total 1",
		"tabled_idempotent_replays_total 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestIdemCacheBounded(t *testing.T) {
	c := newIdemCache(2)
	c.put("a", "application/json", []byte("1"))
	c.put("b", "application/json", []byte("2"))
	c.put("a", ContentTypeBinary, []byte("ignored-dup")) // dedup, no double entry
	c.put("c", ContentTypeBinary, []byte("3"))           // evicts a
	if _, _, ok := c.get("a"); ok {
		t.Fatal("oldest key not evicted")
	}
	if ct, v, ok := c.get("b"); !ok || string(v) != "2" || ct != "application/json" {
		t.Fatalf("b: %q %q %v", ct, v, ok)
	}
	if ct, v, ok := c.get("c"); !ok || string(v) != "3" || ct != ContentTypeBinary {
		t.Fatalf("c: %q %q %v", ct, v, ok)
	}
}

// TestServerBodyLimit: a body over MaxBodyBytes is a 413, which the client
// surfaces as a permanent (non-retried) remote error.
func TestServerBodyLimit(t *testing.T) {
	c, _ := newWALServer(t, nil, func(o *ServerOptions) { o.MaxBodyBytes = 1024 })
	err := c.Set(context.Background(), Cell[string]{X: 1, Y: 1, V: strings.Repeat("x", 4096)})
	if err == nil || !strings.Contains(err.Error(), "413") {
		t.Fatalf("oversized body: %v, want 413", err)
	}
	// Within the limit still works.
	if err := c.Set(context.Background(), Cell[string]{X: 1, Y: 1, V: "small"}); err != nil {
		t.Fatal(err)
	}
}

// TestServerBatchTimeout: a handler overrunning BatchTimeout is cut off
// with a 503 — injected backend latency stands in for a stuck disk.
func TestServerBatchTimeout(t *testing.T) {
	reg := obs.NewRegistry()
	table, err := NewSharded[string](core.SquareShell{}, 4, pagedStore, 16, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	slow := NewFaultInjector(&Faults{Seed: 1, Latency: 200 * time.Millisecond}).WrapBackend(table)
	ts := httptest.NewServer(NewHandler(slow, ServerOptions{
		Registry: reg, Ready: obs.NewFlag(true), BatchTimeout: 20 * time.Millisecond,
	}))
	defer ts.Close()
	c := &Client{Base: ts.URL, HTTP: ts.Client()}

	err = c.Set(context.Background(), Cell[string]{X: 1, Y: 1, V: "v"})
	if err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("slow batch: %v, want 503 from the timeout handler", err)
	}
}

// TestClientRetries: the retrying client survives transient 503s and
// transport-level flakiness, reusing one idempotency key across attempts;
// 4xx is permanent and never retried.
func TestClientRetries(t *testing.T) {
	table, err := NewSharded[string](core.SquareShell{}, 4, pagedStore, 16, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	real := NewHandler(table, ServerOptions{Ready: obs.NewFlag(true)})

	var attempts atomic.Int64
	var mu sync.Mutex
	var keys []string
	flaky := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/batch" {
			mu.Lock()
			keys = append(keys, r.Header.Get(IdempotencyKeyHeader))
			mu.Unlock()
			if attempts.Add(1) <= 2 {
				http.Error(w, "transient", http.StatusServiceUnavailable)
				return
			}
		}
		real.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(flaky)
	defer ts.Close()

	pol := &retry.Policy{Base: time.Millisecond, Max: 5 * time.Millisecond, MaxAttempts: 5}
	c := &Client{Base: ts.URL, HTTP: ts.Client(), Retry: pol}
	ctx := context.Background()

	if err := c.Set(ctx, Cell[string]{X: 1, Y: 1, V: "persisted"}); err != nil {
		t.Fatalf("retried set: %v", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3 (two 503s then success)", got)
	}
	mu.Lock()
	seen := append([]string(nil), keys...)
	mu.Unlock()
	if len(seen) != 3 {
		t.Fatalf("recorded %d batch attempts, want 3", len(seen))
	}
	for _, k := range seen {
		if k == "" || k != seen[0] {
			t.Fatalf("idempotency key not reused across retries: %q vs %q", k, seen[0])
		}
	}
	if v, found, err := c.Get(ctx, 1, 1); err != nil || !found || v != "persisted" {
		t.Fatalf("after retries: %q %v %v", v, found, err)
	}

	// Malformed JSON is rejected with a 400 by the real handler.
	resp, err := c.HTTP.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(`{"bogus":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad request: %d", resp.StatusCode)
	}
}

// TestClientRetryExhaustion: a server that never recovers exhausts
// MaxAttempts and returns the last 503.
func TestClientRetryExhaustion(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		attempts.Add(1)
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	pol := &retry.Policy{Base: time.Millisecond, Max: 2 * time.Millisecond, MaxAttempts: 3}
	c := &Client{Base: ts.URL, HTTP: ts.Client(), Retry: pol}
	err := c.Set(context.Background(), Cell[string]{X: 1, Y: 1, V: "v"})
	if err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("exhausted retries: %v", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
}

// TestClientPermanent4xx: client errors are not retried.
func TestClientPermanent4xx(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		attempts.Add(1)
		http.Error(w, "no", http.StatusBadRequest)
	}))
	defer ts.Close()
	pol := &retry.Policy{Base: time.Millisecond, MaxAttempts: 5}
	c := &Client{Base: ts.URL, HTTP: ts.Client(), Retry: pol}
	err := c.Set(context.Background(), Cell[string]{X: 1, Y: 1, V: "v"})
	if err == nil {
		t.Fatal("400 should surface as an error")
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("attempts = %d, want 1 (4xx is permanent)", got)
	}
}

// TestServerWALDurability: acked writes through the HTTP API survive a
// server "crash" (drop everything, reopen the WAL into a fresh table).
func TestServerWALDurability(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "table.wal")
	reg := obs.NewRegistry()
	m := NewMetrics(reg, 4)
	table, err := NewSharded[string](core.SquareShell{}, 4, pagedStore, 64, 64, m)
	if err != nil {
		t.Fatal(err)
	}
	wal, _, err := OpenWAL(walPath, func(rec WALRecord) error { return ApplyWALRecord(table, rec) },
		WALOptions{Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(table, ServerOptions{
		Registry: reg, Metrics: m, Ready: obs.NewFlag(true), WAL: wal,
	}))
	c := &Client{Base: ts.URL, HTTP: ts.Client()}
	ctx := context.Background()
	for i := int64(1); i <= 10; i++ {
		if err := c.Set(ctx, Cell[string]{X: i, Y: i, V: "durable"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Resize(ctx, 128, 64); err != nil {
		t.Fatal(err)
	}
	// Crash: no snapshot, no graceful close of anything but the listener.
	ts.Close()
	wal.Close()

	recovered, err := NewSharded[string](core.SquareShell{}, 4, pagedStore, 64, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	w2, replayed, err := OpenWAL(walPath, func(rec WALRecord) error { return ApplyWALRecord(recovered, rec) }, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	w2.Close()
	if replayed != 11 {
		t.Fatalf("replayed %d records, want 11", replayed)
	}
	for i := int64(1); i <= 10; i++ {
		if v, ok, _ := recovered.Get(i, i); !ok || v != "durable" {
			t.Fatalf("acked write (%d,%d) lost after crash: %q %v", i, i, v, ok)
		}
	}
	if r, _ := recovered.Dims(); r != 128 {
		t.Fatalf("rows after recovery = %d, want 128", r)
	}
}
