package tabled

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"pairfn/internal/core"
	"pairfn/internal/obs"
	"pairfn/internal/srvkit"
)

// TestServerLongTimeoutGets503NotReset is the end-to-end regression test
// for the hardcoded-WriteTimeout bug: tabledserver used to pin
// WriteTimeout at 2m, so running it with a batch timeout at or past that
// made every slow batch end in a dropped connection instead of the
// promised 503. The daemon now builds its server with
// srvkit.NewHTTPServer(addr, mux, timeout), whose write deadline is
// derived to always exceed the handler timeout — this test composes the
// same pieces the main does (scaled down) and proves a batch overrunning
// the timeout comes back as a clean 503 "batch timed out" over a real
// connection, with real deadlines armed.
func TestServerLongTimeoutGets503NotReset(t *testing.T) {
	const batchTimeout = 250 * time.Millisecond

	table, err := NewSharded[string](core.SquareShell{}, 4, pagedStore, 16, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	slow := NewFaultInjector(&Faults{Seed: 1, Latency: 4 * batchTimeout}).WrapBackend(table)
	handler := NewHandler(slow, ServerOptions{
		Ready:        obs.NewFlag(true),
		BatchTimeout: batchTimeout,
	})

	srv := srvkit.NewHTTPServer("", handler, batchTimeout)
	if srv.WriteTimeout <= batchTimeout {
		t.Fatalf("WriteTimeout %v does not exceed the batch timeout %v — the hardcode bug shape",
			srv.WriteTimeout, batchTimeout)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })

	c := &Client{Base: "http://" + ln.Addr().String()}
	err = c.Set(context.Background(), Cell[string]{X: 1, Y: 1, V: "v"})
	if err == nil {
		t.Fatal("slow batch succeeded, want a 503 from the timeout handler")
	}
	if !strings.Contains(err.Error(), "503") || !strings.Contains(err.Error(), "batch timed out") {
		t.Fatalf("slow batch failed with %v, want a 503 %q — a transport error here means the connection deadline fired first",
			err, "batch timed out")
	}
}
