package tabled

import (
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"pairfn/internal/core"
	"pairfn/internal/obs"
)

func newTestServer(t *testing.T, snapshotPath string) (*Client, *Sharded[string], *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	m := NewMetrics(reg, 8)
	table, err := NewSharded[string](core.SquareShell{}, 8, pagedStore, 64, 64, m)
	if err != nil {
		t.Fatal(err)
	}
	opt := ServerOptions{Registry: reg, Metrics: m, Ready: obs.NewFlag(true)}
	if snapshotPath != "" {
		opt.Snapshot = func() error { return table.SaveFile(snapshotPath) }
	}
	ts := httptest.NewServer(NewHandler(table, opt))
	t.Cleanup(ts.Close)
	return &Client{Base: ts.URL, HTTP: ts.Client()}, table, reg
}

// TestServerBatchRoundTrip drives the full client → HTTP → backend loop:
// mixed batch with set, get, resize, dims, stats in one request.
func TestServerBatchRoundTrip(t *testing.T) {
	c, _, _ := newTestServer(t, "")
	ctx := context.Background()

	res, err := c.Batch(ctx, []Op{
		{Op: "set", X: 1, Y: 2, V: "alpha"},
		{Op: "set", X: 3, Y: 4, V: "beta"},
		{Op: "get", X: 1, Y: 2},
		{Op: "get", X: 9, Y: 9},
		{Op: "resize", Rows: 128, Cols: 64},
		{Op: "dims"},
		{Op: "stats"},
		{Op: "get", X: 100, Y: 1}, // in bounds only after the resize
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].OK || !res[1].OK {
		t.Fatalf("sets failed: %+v", res[:2])
	}
	if !res[2].Found || res[2].V != "alpha" {
		t.Fatalf("get: %+v", res[2])
	}
	if res[3].Found {
		t.Fatalf("unset cell reported found: %+v", res[3])
	}
	if !res[4].OK {
		t.Fatalf("resize: %+v", res[4])
	}
	if res[5].Rows != 128 || res[5].Cols != 64 {
		t.Fatalf("dims: %+v", res[5])
	}
	if res[6].Stats == nil || res[6].Stats.Reshapes != 1 {
		t.Fatalf("stats: %+v", res[6])
	}
	if res[7].Err != "" {
		t.Fatalf("get after resize: %+v", res[7])
	}

	// Typed helpers.
	if err := c.Set(ctx, Cell[string]{X: 5, Y: 5, V: "gamma"}); err != nil {
		t.Fatal(err)
	}
	if v, found, err := c.Get(ctx, 5, 5); err != nil || !found || v != "gamma" {
		t.Fatalf("client Get: %q %v %v", v, found, err)
	}
	if rows, cols, err := c.Dims(ctx); err != nil || rows != 128 || cols != 64 {
		t.Fatalf("client Dims: %d %d %v", rows, cols, err)
	}
	reply, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Info.Backend != "sharded" || reply.Info.Shards != 8 || reply.Info.Mapping != "square-shell" {
		t.Fatalf("stats info: %+v", reply.Info)
	}
}

// TestServerErrors pins the API error surface: per-op errors ride in
// results with HTTP 200; malformed requests and oversized batches are 400s.
func TestServerErrors(t *testing.T) {
	c, _, _ := newTestServer(t, "")
	ctx := context.Background()

	res, err := c.Batch(ctx, []Op{
		{Op: "get", X: 0, Y: 0},
		{Op: "set", X: 1 << 62, Y: 1 << 62, V: "x"},
		{Op: "flip", X: 1, Y: 1},
		{Op: "get", X: 1, Y: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if res[i].Err == "" {
			t.Errorf("op %d should have errored: %+v", i, res[i])
		}
	}
	if res[3].Err != "" { // batch continues past per-op failures
		t.Errorf("trailing valid op failed: %+v", res[3])
	}

	if _, err := c.Batch(ctx, nil); err == nil {
		t.Error("empty batch should be rejected")
	}
	big := make([]Op, DefaultMaxBatch+1)
	for i := range big {
		big[i] = Op{Op: "dims"}
	}
	if _, err := c.Batch(ctx, big); err == nil {
		t.Error("oversized batch should be rejected")
	}

	resp, err := c.HTTP.Post(c.Base+"/v1/batch", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d", resp.StatusCode)
	}
}

// TestServerSnapshotEndpoint saves via POST /v1/snapshot and reloads the
// file; without configuration the endpoint is 501.
func TestServerSnapshotEndpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.gob")
	c, table, _ := newTestServer(t, path)
	ctx := context.Background()
	if err := c.Set(ctx, Cell[string]{X: 7, Y: 7, V: "persist-me"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Snapshot(ctx); err != nil {
		t.Fatal(err)
	}
	l, err := LoadShardedFile[string](path, table.Mapping(), 8, pagedStore, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok, err := l.Get(7, 7); err != nil || !ok || v != "persist-me" {
		t.Fatalf("reloaded: %q %v %v", v, ok, err)
	}

	cNoSnap, _, _ := newTestServer(t, "")
	if err := cNoSnap.Snapshot(ctx); err == nil {
		t.Error("snapshot without configuration should fail (501)")
	}
}

// TestServerObservability checks the operational surface: /metrics carries
// tabled_* and http_* families after traffic, /healthz is 200, /readyz
// flips to 503 when the flag drops.
func TestServerObservability(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg, 4)
	table, err := NewSharded[string](core.SquareShell{}, 4, pagedStore, 16, 16, m)
	if err != nil {
		t.Fatal(err)
	}
	ready := obs.NewFlag(true)
	ts := httptest.NewServer(NewHandler(table, ServerOptions{Registry: reg, Metrics: m, Ready: ready}))
	defer ts.Close()
	c := &Client{Base: ts.URL, HTTP: ts.Client()}

	if err := c.Set(context.Background(), Cell[string]{X: 1, Y: 1, V: "v"}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Get(context.Background(), 1, 1); err != nil {
		t.Fatal(err)
	}

	get := func(path string) (int, string) {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 64<<10)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	for _, want := range []string{
		"tabled_ops_total{op=\"set\"} 1",
		"tabled_ops_total{op=\"get\"} 1",
		"tabled_shard_ops_total",
		"tabled_batch_cells",
		"http_requests_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Errorf("/healthz: %d", code)
	}
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Errorf("/readyz ready: %d", code)
	}
	ready.Set(false)
	if code, _ := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz draining: %d", code)
	}
}

// TestServerConcurrentClients is the race-detector pass over the full HTTP
// stack: many clients batching sets/gets while one resizes.
func TestServerConcurrentClients(t *testing.T) {
	c, _, _ := newTestServer(t, "")
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				switch {
				case w == 0 && i%10 == 9:
					if err := c.Resize(ctx, int64(64+i), 64); err != nil {
						t.Error(err)
					}
				case w%2 == 0:
					ops := make([]Op, 8)
					for k := range ops {
						ops[k] = Op{Op: "set", X: int64(k%16 + 1), Y: int64(w*4 + 1), V: "v"}
					}
					if _, err := c.Batch(ctx, ops); err != nil {
						t.Error(err)
					}
				default:
					keys := make([]Pos, 8)
					for k := range keys {
						keys[k] = Pos{X: int64(k + 1), Y: int64(w + 1)}
					}
					if _, err := c.GetBatch(ctx, keys); err != nil {
						t.Error(err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
