package tabled

import (
	"fmt"
	"sync"

	"pairfn/internal/core"
	"pairfn/internal/extarray"
)

// stripeBits sizes address stripes at 2^10 consecutive addresses — one
// PagedStore page — so a backing page never spans shards and stripe
// arithmetic is a shift.
const stripeBits = 10

// MaxShards bounds the shard count (and with it per-shard metric
// cardinality).
const MaxShards = 256

// A Cell is one positioned value in a batch.
type Cell[T any] struct {
	X, Y int64
	V    T
}

// A Pos is one position in a batched get.
type Pos struct {
	X, Y int64
}

// A GetResult is the outcome of one batched get.
type GetResult[T any] struct {
	V   T
	OK  bool
	Err error
}

// shard is one lock-striped slice of the address space with its own
// backing store and cost counters (all guarded by mu).
type shard[T any] struct {
	mu        sync.RWMutex
	store     extarray.Store[T]
	moves     int64
	footprint int64
}

// Sharded is an address-striped, concurrently accessible extendible table:
// the tabled replacement for extarray.Sync on the hot path. It implements
// extarray.Table[T] plus batched operations that take each shard's lock
// once per batch. See the package documentation for the locking model.
type Sharded[T any] struct {
	f      core.StorageMapping
	shards []shard[T]
	mask   int64
	m      *Metrics

	// rows, cols and reshapes are written only under ALL shard write locks
	// (in index order) and read under any single shard lock.
	rows     int64
	cols     int64
	reshapes int64
}

// NewSharded returns an empty rows×cols sharded table over f. nshards is
// rounded up to a power of two in [1, MaxShards]; newStore allocates one
// backing store per shard (e.g. extarray.NewPagedStore). m may be nil.
func NewSharded[T any](f core.StorageMapping, nshards int, newStore func() extarray.Store[T], rows, cols int64, m *Metrics) (*Sharded[T], error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("tabled: dimensions %d×%d invalid", rows, cols)
	}
	n := 1
	for n < nshards && n < MaxShards {
		n <<= 1
	}
	s := &Sharded[T]{
		f:      f,
		shards: make([]shard[T], n),
		mask:   int64(n - 1),
		m:      m,
		rows:   rows,
		cols:   cols,
	}
	for i := range s.shards {
		s.shards[i].store = newStore()
	}
	return s, nil
}

// Mapping returns the storage mapping laying out this table.
func (s *Sharded[T]) Mapping() core.StorageMapping { return s.f }

// NumShards returns the shard count.
func (s *Sharded[T]) NumShards() int { return len(s.shards) }

// shardOf returns the shard owning addr: stripe (addr >> stripeBits),
// folded over the shards.
func (s *Sharded[T]) shardOf(addr int64) *shard[T] {
	return &s.shards[(addr>>stripeBits)&s.mask]
}

func (s *Sharded[T]) shardIndex(addr int64) int {
	return int((addr >> stripeBits) & s.mask)
}

// checkBounds validates (x, y) against dims; the caller must hold at least
// one shard lock.
func (s *Sharded[T]) checkBounds(x, y int64) error {
	if x < 1 || y < 1 || x > s.rows || y > s.cols {
		return fmt.Errorf("%w: (%d, %d) in %d×%d", extarray.ErrBounds, x, y, s.rows, s.cols)
	}
	return nil
}

// Dims implements extarray.Table.
func (s *Sharded[T]) Dims() (int64, int64) {
	sh := &s.shards[0]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return s.rows, s.cols
}

// Get implements extarray.Table. The address (and with it the shard) is
// computed before any lock is taken; only the owning shard is locked.
func (s *Sharded[T]) Get(x, y int64) (T, bool, error) {
	var zero T
	if x < 1 || y < 1 {
		return zero, false, fmt.Errorf("%w: (%d, %d)", extarray.ErrBounds, x, y)
	}
	addr, err := s.f.Encode(x, y)
	if err != nil {
		return zero, false, err
	}
	sh := s.shardOf(addr)
	s.m.shardOp(s.shardIndex(addr))
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if err := s.checkBounds(x, y); err != nil {
		return zero, false, err
	}
	v, ok := sh.store.Get(addr)
	return v, ok, nil
}

// Set implements extarray.Table.
func (s *Sharded[T]) Set(x, y int64, v T) error {
	if x < 1 || y < 1 {
		return fmt.Errorf("%w: (%d, %d)", extarray.ErrBounds, x, y)
	}
	addr, err := s.f.Encode(x, y)
	if err != nil {
		return err
	}
	sh := s.shardOf(addr)
	s.m.shardOp(s.shardIndex(addr))
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := s.checkBounds(x, y); err != nil {
		return err
	}
	sh.store.Set(addr, v)
	if addr > sh.footprint {
		sh.footprint = addr
	}
	return nil
}

// batchRef ties one batch entry to its precomputed address.
type batchRef struct {
	idx  int
	addr int64
}

// plan lays one batch out in shard order with a stable two-pass counting
// sort, reporting per-entry Encode/bounds errors through errf. It returns
// the shard-ordered refs and the per-shard start offsets: shard g's work is
// refs[starts[g]:starts[g+1]] (starts[len(shards)] == len(refs)). The
// layout costs three allocations per batch regardless of shard count — no
// per-shard slice growth on the hot path.
func (s *Sharded[T]) plan(n int, pos func(int) (x, y int64), errf func(i int, err error)) ([]batchRef, []int32) {
	tmp := make([]batchRef, 0, n)
	starts := make([]int32, len(s.shards)+1)
	for i := 0; i < n; i++ {
		x, y := pos(i)
		if x < 1 || y < 1 {
			errf(i, fmt.Errorf("%w: (%d, %d)", extarray.ErrBounds, x, y))
			continue
		}
		addr, err := s.f.Encode(x, y)
		if err != nil {
			errf(i, err)
			continue
		}
		tmp = append(tmp, batchRef{idx: i, addr: addr})
		starts[s.shardIndex(addr)+1]++
	}
	for g := 1; g < len(starts); g++ {
		starts[g] += starts[g-1]
	}
	// Forward scatter against incrementing start cursors: stable, so entries
	// for the same position keep their input order within a shard.
	cur := make([]int32, len(s.shards))
	copy(cur, starts)
	refs := make([]batchRef, len(tmp))
	for _, r := range tmp {
		g := s.shardIndex(r.addr)
		refs[cur[g]] = r
		cur[g]++
	}
	return refs, starts
}

// SetBatch stores every cell, taking each touched shard's write lock
// exactly once. The returned slice has one entry per input cell: nil on
// success, or the per-cell error (bounds, overflow). Cells in different
// shards are applied in shard order, not input order; cells at the same
// position within one batch are applied in input order.
func (s *Sharded[T]) SetBatch(cells []Cell[T]) []error {
	errs := make([]error, len(cells))
	refs, starts := s.plan(len(cells),
		func(i int) (int64, int64) { return cells[i].X, cells[i].Y },
		func(i int, err error) { errs[i] = err })
	for g := range s.shards {
		span := refs[starts[g]:starts[g+1]]
		if len(span) == 0 {
			continue
		}
		sh := &s.shards[g]
		s.m.shardOps(g, len(span))
		sh.mu.Lock()
		for _, r := range span {
			c := &cells[r.idx]
			if err := s.checkBounds(c.X, c.Y); err != nil {
				errs[r.idx] = err
				continue
			}
			sh.store.Set(r.addr, c.V)
			if r.addr > sh.footprint {
				sh.footprint = r.addr
			}
		}
		sh.mu.Unlock()
	}
	return errs
}

// GetBatch reads every position, taking each touched shard's read lock
// exactly once. Results are in input order.
func (s *Sharded[T]) GetBatch(keys []Pos) []GetResult[T] {
	res := make([]GetResult[T], len(keys))
	refs, starts := s.plan(len(keys),
		func(i int) (int64, int64) { return keys[i].X, keys[i].Y },
		func(i int, err error) { res[i].Err = err })
	for g := range s.shards {
		span := refs[starts[g]:starts[g+1]]
		if len(span) == 0 {
			continue
		}
		sh := &s.shards[g]
		s.m.shardOps(g, len(span))
		sh.mu.RLock()
		for _, r := range span {
			k := keys[r.idx]
			if err := s.checkBounds(k.X, k.Y); err != nil {
				res[r.idx].Err = err
				continue
			}
			res[r.idx].V, res[r.idx].OK = sh.store.Get(r.addr)
		}
		sh.mu.RUnlock()
	}
	return res
}

// lockAll takes every shard's write lock in index order (the only legal
// order — see the package doc).
func (s *Sharded[T]) lockAll() {
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
}

func (s *Sharded[T]) unlockAll() {
	for i := len(s.shards) - 1; i >= 0; i-- {
		s.shards[i].mu.Unlock()
	}
}

// Resize implements extarray.Table. It is the one global barrier: all
// shard locks are held while dimensions change. Growth touches no backing
// store; a shrink deletes discarded cells from only the shards that own
// their addresses (counted as moves there, mirroring extarray.Array).
func (s *Sharded[T]) Resize(rows, cols int64) error {
	if rows < 0 || cols < 0 {
		return fmt.Errorf("%w: to %d×%d", extarray.ErrShrink, rows, cols)
	}
	s.lockAll()
	defer s.unlockAll()
	s.reshapes++
	if rows < s.rows || cols < s.cols {
		for x := int64(1); x <= s.rows; x++ {
			for y := int64(1); y <= s.cols; y++ {
				if x <= rows && y <= cols {
					continue
				}
				addr, err := s.f.Encode(x, y)
				if err != nil {
					return err
				}
				sh := s.shardOf(addr)
				if _, ok := sh.store.Get(addr); ok {
					sh.store.Delete(addr)
					sh.moves++
				}
			}
		}
	}
	s.rows, s.cols = rows, cols
	return nil
}

// Stats implements extarray.Table, aggregating across shards: Moves is the
// sum, Footprint the max over shard footprints and store MaxAddrs.
func (s *Sharded[T]) Stats() extarray.Stats {
	var st extarray.Stats
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		st.Moves += sh.moves
		if sh.footprint > st.Footprint {
			st.Footprint = sh.footprint
		}
		if m := sh.store.MaxAddr(); m > st.Footprint {
			st.Footprint = m
		}
		if i == 0 {
			st.Reshapes = s.reshapes
		}
		sh.mu.RUnlock()
	}
	return st
}

// Len returns the number of stored elements across all shards.
func (s *Sharded[T]) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += sh.store.Len()
		sh.mu.RUnlock()
	}
	return n
}
