package tabled

import (
	"fmt"
	"sync"

	"pairfn/internal/core"
	"pairfn/internal/extarray"
)

// stripeBits sizes address stripes at 2^10 consecutive addresses — one
// PagedStore page — so a backing page never spans shards and stripe
// arithmetic is a shift.
const stripeBits = 10

// MaxShards bounds the shard count (and with it per-shard metric
// cardinality).
const MaxShards = 256

// A Cell is one positioned value in a batch.
type Cell[T any] struct {
	X, Y int64
	V    T
}

// A Pos is one position in a batched get.
type Pos struct {
	X, Y int64
}

// A GetResult is the outcome of one batched get.
type GetResult[T any] struct {
	V   T
	OK  bool
	Err error
}

// shard is one lock-striped slice of the address space with its own
// backing store and cost counters (all guarded by mu).
type shard[T any] struct {
	mu        sync.RWMutex
	store     extarray.Store[T]
	moves     int64
	footprint int64
}

// Sharded is an address-striped, concurrently accessible extendible table:
// the tabled replacement for extarray.Sync on the hot path. It implements
// extarray.Table[T] plus batched operations that take each shard's lock
// once per batch. See the package documentation for the locking model.
type Sharded[T any] struct {
	f      core.StorageMapping
	shards []shard[T]
	mask   int64
	m      *Metrics
	// newStore allocates a fresh backing store — retained so
	// RestoreSnapshot can swap every shard's contents wholesale.
	newStore func() extarray.Store[T]

	// rows, cols and reshapes are written only under ALL shard write locks
	// (in index order) and read under any single shard lock.
	rows     int64
	cols     int64
	reshapes int64
}

// NewSharded returns an empty rows×cols sharded table over f. nshards is
// rounded up to a power of two in [1, MaxShards]; newStore allocates one
// backing store per shard (e.g. extarray.NewPagedStore). m may be nil.
func NewSharded[T any](f core.StorageMapping, nshards int, newStore func() extarray.Store[T], rows, cols int64, m *Metrics) (*Sharded[T], error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("tabled: dimensions %d×%d invalid", rows, cols)
	}
	n := 1
	for n < nshards && n < MaxShards {
		n <<= 1
	}
	s := &Sharded[T]{
		f:        f,
		shards:   make([]shard[T], n),
		mask:     int64(n - 1),
		m:        m,
		newStore: newStore,
		rows:     rows,
		cols:     cols,
	}
	for i := range s.shards {
		s.shards[i].store = newStore()
	}
	return s, nil
}

// Mapping returns the storage mapping laying out this table.
func (s *Sharded[T]) Mapping() core.StorageMapping { return s.f }

// NumShards returns the shard count.
func (s *Sharded[T]) NumShards() int { return len(s.shards) }

// shardOf returns the shard owning addr: stripe (addr >> stripeBits),
// folded over the shards.
func (s *Sharded[T]) shardOf(addr int64) *shard[T] {
	return &s.shards[(addr>>stripeBits)&s.mask]
}

func (s *Sharded[T]) shardIndex(addr int64) int {
	return int((addr >> stripeBits) & s.mask)
}

// checkBounds validates (x, y) against dims; the caller must hold at least
// one shard lock.
func (s *Sharded[T]) checkBounds(x, y int64) error {
	if x < 1 || y < 1 || x > s.rows || y > s.cols {
		return fmt.Errorf("%w: (%d, %d) in %d×%d", extarray.ErrBounds, x, y, s.rows, s.cols)
	}
	return nil
}

// Dims implements extarray.Table.
func (s *Sharded[T]) Dims() (int64, int64) {
	sh := &s.shards[0]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return s.rows, s.cols
}

// Get implements extarray.Table. The address (and with it the shard) is
// computed before any lock is taken; only the owning shard is locked.
func (s *Sharded[T]) Get(x, y int64) (T, bool, error) {
	var zero T
	if x < 1 || y < 1 {
		return zero, false, fmt.Errorf("%w: (%d, %d)", extarray.ErrBounds, x, y)
	}
	addr, err := s.f.Encode(x, y)
	if err != nil {
		return zero, false, err
	}
	sh := s.shardOf(addr)
	s.m.shardOp(s.shardIndex(addr))
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if err := s.checkBounds(x, y); err != nil {
		return zero, false, err
	}
	v, ok := sh.store.Get(addr)
	return v, ok, nil
}

// Set implements extarray.Table.
func (s *Sharded[T]) Set(x, y int64, v T) error {
	if x < 1 || y < 1 {
		return fmt.Errorf("%w: (%d, %d)", extarray.ErrBounds, x, y)
	}
	addr, err := s.f.Encode(x, y)
	if err != nil {
		return err
	}
	sh := s.shardOf(addr)
	s.m.shardOp(s.shardIndex(addr))
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := s.checkBounds(x, y); err != nil {
		return err
	}
	sh.store.Set(addr, v)
	if addr > sh.footprint {
		sh.footprint = addr
	}
	return nil
}

// batchRef ties one batch entry to its precomputed address.
type batchRef struct {
	idx  int
	addr int64
}

// planScratch holds every buffer one batch layout needs, pooled so the
// steady-state plan performs no allocations: the batched address pass
// (core.EncodeBatch) reads xs/ys and writes addrs, the counting sort fills
// tmp/starts/cur, and the scatter fills refs.
type planScratch struct {
	xs, ys, addrs []int64
	tmp, refs     []batchRef
	starts, cur   []int32
}

// planPool recycles plan scratch across batches (and across Sharded
// instances: the buffers carry no type parameter and grow to the largest
// batch/shard-count seen).
var planPool = sync.Pool{New: func() any { return new(planScratch) }}

// grow sizes the scratch for an n-entry batch over nshards shards,
// reusing capacity wherever it suffices.
func (p *planScratch) grow(n, nshards int) {
	if cap(p.xs) < n {
		p.xs = make([]int64, n)
		p.ys = make([]int64, n)
		p.addrs = make([]int64, n)
		p.tmp = make([]batchRef, n)
		p.refs = make([]batchRef, n)
	}
	if cap(p.starts) < nshards+1 {
		p.starts = make([]int32, nshards+1)
		p.cur = make([]int32, nshards)
	}
}

// plan lays one batch out in shard order with a stable two-pass counting
// sort over scr.xs/ys[:n] (which the caller has filled). Addresses are
// computed for the whole batch in one core.EncodeBatch call — mappings
// with a native batch implementation amortize shell-walk state and pay
// interface dispatch once per batch, not once per cell. It returns the
// shard-ordered refs and per-shard start offsets: shard g's work is
// refs[starts[g]:starts[g+1]]. Entries whose encode failed are omitted
// from refs and left with scr.addrs[i] == 0 (never a valid address);
// failed reports whether any exist, and the caller recovers their errors
// via encodeErr — keeping the happy path free of error-reporting closures
// and of allocations.
func (s *Sharded[T]) plan(scr *planScratch, n int) (refs []batchRef, starts []int32, failed bool) {
	core.EncodeBatch(s.f, scr.xs[:n], scr.ys[:n], scr.addrs[:n], nil)
	tmp := scr.tmp[:0]
	starts = scr.starts[:len(s.shards)+1]
	clear(starts)
	for i := 0; i < n; i++ {
		addr := scr.addrs[i]
		if addr == 0 {
			failed = true
			continue
		}
		tmp = append(tmp, batchRef{idx: i, addr: addr})
		starts[s.shardIndex(addr)+1]++
	}
	for g := 1; g < len(starts); g++ {
		starts[g] += starts[g-1]
	}
	// Forward scatter against incrementing start cursors: stable, so entries
	// for the same position keep their input order within a shard.
	cur := scr.cur[:len(s.shards)]
	copy(cur, starts)
	refs = scr.refs[:len(tmp)]
	for _, r := range tmp {
		g := s.shardIndex(r.addr)
		refs[cur[g]] = r
		cur[g]++
	}
	return refs, starts, failed
}

// encodeErr re-derives the per-entry error for an element the batched
// address pass rejected (cold path: it runs only for entries that already
// failed once). Out-of-domain positions are reported as ErrBounds to match
// the scalar Get/Set surface.
func (s *Sharded[T]) encodeErr(x, y int64) error {
	if x < 1 || y < 1 {
		return fmt.Errorf("%w: (%d, %d)", extarray.ErrBounds, x, y)
	}
	if _, err := s.f.Encode(x, y); err != nil {
		return err
	}
	// Unreachable if the mapping honors the BatchEncoder contract
	// (dst == 0 only on failure); fail loudly rather than silently drop.
	return fmt.Errorf("tabled: mapping %s batch-rejected (%d, %d) without an error", s.f.Name(), x, y)
}

// SetBatch stores every cell, taking each touched shard's write lock
// exactly once. The returned slice has one entry per input cell: nil on
// success, or the per-cell error (bounds, overflow). Cells in different
// shards are applied in shard order, not input order; cells at the same
// position within one batch are applied in input order.
func (s *Sharded[T]) SetBatch(cells []Cell[T]) []error {
	errs := make([]error, len(cells))
	s.SetBatchInto(cells, errs)
	return errs
}

// SetBatchInto is SetBatch writing its per-cell outcomes into errs (whose
// length must equal len(cells)): the allocation-free form the binary wire
// path uses with pooled result buffers. Entries are overwritten — nil on
// success, the per-cell error otherwise.
func (s *Sharded[T]) SetBatchInto(cells []Cell[T], errs []error) {
	clear(errs)
	scr := planPool.Get().(*planScratch)
	defer planPool.Put(scr)
	scr.grow(len(cells), len(s.shards))
	for i := range cells {
		scr.xs[i], scr.ys[i] = cells[i].X, cells[i].Y
	}
	refs, starts, anyFailed := s.plan(scr, len(cells))
	if anyFailed {
		for i := range cells {
			if scr.addrs[i] == 0 {
				errs[i] = s.encodeErr(cells[i].X, cells[i].Y)
			}
		}
	}
	for g := range s.shards {
		span := refs[starts[g]:starts[g+1]]
		if len(span) == 0 {
			continue
		}
		sh := &s.shards[g]
		s.m.shardOps(g, len(span))
		sh.mu.Lock()
		for _, r := range span {
			c := &cells[r.idx]
			if err := s.checkBounds(c.X, c.Y); err != nil {
				errs[r.idx] = err
				continue
			}
			sh.store.Set(r.addr, c.V)
			if r.addr > sh.footprint {
				sh.footprint = r.addr
			}
		}
		sh.mu.Unlock()
	}
}

// GetBatch reads every position, taking each touched shard's read lock
// exactly once. Results are in input order.
func (s *Sharded[T]) GetBatch(keys []Pos) []GetResult[T] {
	res := make([]GetResult[T], len(keys))
	s.GetBatchInto(keys, res)
	return res
}

// GetBatchInto is GetBatch writing its results into res (whose length must
// equal len(keys)): the allocation-free form. Entries are overwritten.
func (s *Sharded[T]) GetBatchInto(keys []Pos, res []GetResult[T]) {
	clear(res)
	scr := planPool.Get().(*planScratch)
	defer planPool.Put(scr)
	scr.grow(len(keys), len(s.shards))
	for i := range keys {
		scr.xs[i], scr.ys[i] = keys[i].X, keys[i].Y
	}
	refs, starts, anyFailed := s.plan(scr, len(keys))
	if anyFailed {
		for i := range keys {
			if scr.addrs[i] == 0 {
				res[i].Err = s.encodeErr(keys[i].X, keys[i].Y)
			}
		}
	}
	for g := range s.shards {
		span := refs[starts[g]:starts[g+1]]
		if len(span) == 0 {
			continue
		}
		sh := &s.shards[g]
		s.m.shardOps(g, len(span))
		sh.mu.RLock()
		for _, r := range span {
			k := keys[r.idx]
			if err := s.checkBounds(k.X, k.Y); err != nil {
				res[r.idx].Err = err
				continue
			}
			res[r.idx].V, res[r.idx].OK = sh.store.Get(r.addr)
		}
		sh.mu.RUnlock()
	}
}

// lockAll takes every shard's write lock in index order (the only legal
// order — see the package doc).
func (s *Sharded[T]) lockAll() {
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
}

func (s *Sharded[T]) unlockAll() {
	for i := len(s.shards) - 1; i >= 0; i-- {
		s.shards[i].mu.Unlock()
	}
}

// Resize implements extarray.Table. It is the one global barrier: all
// shard locks are held while dimensions change. Growth touches no backing
// store; a shrink deletes discarded cells from only the shards that own
// their addresses (counted as moves there, mirroring extarray.Array).
func (s *Sharded[T]) Resize(rows, cols int64) error {
	if rows < 0 || cols < 0 {
		return fmt.Errorf("%w: to %d×%d", extarray.ErrShrink, rows, cols)
	}
	s.lockAll()
	defer s.unlockAll()
	s.reshapes++
	if rows < s.rows || cols < s.cols {
		for x := int64(1); x <= s.rows; x++ {
			for y := int64(1); y <= s.cols; y++ {
				if x <= rows && y <= cols {
					continue
				}
				addr, err := s.f.Encode(x, y)
				if err != nil {
					return err
				}
				sh := s.shardOf(addr)
				if _, ok := sh.store.Get(addr); ok {
					sh.store.Delete(addr)
					sh.moves++
				}
			}
		}
	}
	s.rows, s.cols = rows, cols
	return nil
}

// Stats implements extarray.Table, aggregating across shards: Moves is the
// sum, Footprint the max over shard footprints and store MaxAddrs.
func (s *Sharded[T]) Stats() extarray.Stats {
	var st extarray.Stats
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		st.Moves += sh.moves
		if sh.footprint > st.Footprint {
			st.Footprint = sh.footprint
		}
		if m := sh.store.MaxAddr(); m > st.Footprint {
			st.Footprint = m
		}
		if i == 0 {
			st.Reshapes = s.reshapes
		}
		sh.mu.RUnlock()
	}
	return st
}

// Len returns the number of stored elements across all shards.
func (s *Sharded[T]) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += sh.store.Len()
		sh.mu.RUnlock()
	}
	return n
}
