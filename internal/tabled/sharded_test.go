package tabled

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"pairfn/internal/core"
	"pairfn/internal/extarray"
	"pairfn/internal/numtheory"
	"pairfn/internal/obs"
)

func newSharded(t testing.TB, f core.StorageMapping, nshards int, rows, cols int64) *Sharded[int64] {
	t.Helper()
	s, err := NewSharded[int64](f, nshards, func() extarray.Store[int64] {
		return extarray.NewPagedStore[int64]()
	}, rows, cols, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestShardedMatchesArray drives the same randomized op sequence through a
// Sharded table and a reference extarray.Array and demands identical
// observable state throughout — including after grows and shrinks.
func TestShardedMatchesArray(t *testing.T) {
	for _, nshards := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("shards=%d", nshards), func(t *testing.T) {
			f := core.SquareShell{}
			s := newSharded(t, f, nshards, 16, 16)
			ref := extarray.NewMapBacked[int64](f, 16, 16)
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 4000; i++ {
				rows, cols := ref.Dims()
				switch op := rng.Intn(10); {
				case op < 5: // set
					x, y := rng.Int63n(rows+2)+1, rng.Int63n(cols+2)+1
					gotErr := s.Set(x, y, int64(i))
					wantErr := ref.Set(x, y, int64(i))
					if (gotErr == nil) != (wantErr == nil) {
						t.Fatalf("op %d: Set(%d,%d) err %v vs ref %v", i, x, y, gotErr, wantErr)
					}
				case op < 9: // get
					x, y := rng.Int63n(rows+2)+1, rng.Int63n(cols+2)+1
					v, ok, gotErr := s.Get(x, y)
					rv, rok, wantErr := ref.Get(x, y)
					if v != rv || ok != rok || (gotErr == nil) != (wantErr == nil) {
						t.Fatalf("op %d: Get(%d,%d) = (%d,%v,%v) vs ref (%d,%v,%v)",
							i, x, y, v, ok, gotErr, rv, rok, wantErr)
					}
				default: // resize: mostly grow, sometimes shrink
					nr := rows + rng.Int63n(5) - 1
					nc := cols + rng.Int63n(5) - 1
					if nr < 1 {
						nr = 1
					}
					if nc < 1 {
						nc = 1
					}
					if err := s.Resize(nr, nc); err != nil {
						t.Fatal(err)
					}
					if err := ref.Resize(nr, nc); err != nil {
						t.Fatal(err)
					}
				}
			}
			// Full sweep: every in-bounds cell agrees; aggregate stats agree.
			rows, cols := ref.Dims()
			if sr, sc := s.Dims(); sr != rows || sc != cols {
				t.Fatalf("dims (%d,%d) vs ref (%d,%d)", sr, sc, rows, cols)
			}
			for x := int64(1); x <= rows; x++ {
				for y := int64(1); y <= cols; y++ {
					v, ok, err := s.Get(x, y)
					rv, rok, rerr := ref.Get(x, y)
					if v != rv || ok != rok || (err == nil) != (rerr == nil) {
						t.Fatalf("sweep (%d,%d): (%d,%v,%v) vs ref (%d,%v,%v)", x, y, v, ok, err, rv, rok, rerr)
					}
				}
			}
			if s.Len() != ref.Len() {
				t.Fatalf("Len %d vs ref %d", s.Len(), ref.Len())
			}
			st, rst := s.Stats(), ref.Stats()
			if st.Moves != rst.Moves || st.Reshapes != rst.Reshapes {
				t.Fatalf("stats %+v vs ref %+v", st, rst)
			}
		})
	}
}

// TestShardedBatchSemantics checks per-op error reporting and input-order
// results for the batched calls.
func TestShardedBatchSemantics(t *testing.T) {
	s := newSharded(t, core.Diagonal{}, 8, 4, 4)
	errs := s.SetBatch([]Cell[int64]{
		{X: 1, Y: 1, V: 11},
		{X: 9, Y: 1, V: 91}, // out of bounds
		{X: 0, Y: 2, V: 2},  // domain
		{X: 4, Y: 4, V: 44},
	})
	if errs[0] != nil || errs[3] != nil {
		t.Fatalf("valid cells errored: %v", errs)
	}
	if !errors.Is(errs[1], extarray.ErrBounds) || !errors.Is(errs[2], extarray.ErrBounds) {
		t.Fatalf("invalid cells: %v, %v", errs[1], errs[2])
	}
	res := s.GetBatch([]Pos{{X: 4, Y: 4}, {X: 1, Y: 1}, {X: 2, Y: 2}, {X: 5, Y: 5}})
	if res[0].V != 44 || !res[0].OK || res[1].V != 11 || !res[1].OK {
		t.Fatalf("batch get order wrong: %+v", res)
	}
	if res[2].OK || res[2].Err != nil {
		t.Fatalf("unset cell: %+v", res[2])
	}
	if !errors.Is(res[3].Err, extarray.ErrBounds) {
		t.Fatalf("out-of-bounds get: %+v", res[3])
	}
}

// TestShardedOverflowSurfaces pins the overflow contract: a Set whose
// address computation overflows int64 reports the mapping's overflow error, it does
// not wrap into some other shard.
func TestShardedOverflowSurfaces(t *testing.T) {
	s := newSharded(t, core.Diagonal{}, 4, 1<<62, 1<<62)
	err := s.Set(1<<61, 1<<61, 1)
	if !errors.Is(err, numtheory.ErrOverflow) {
		t.Fatalf("Set near 2^61: err = %v, want ErrOverflow", err)
	}
	errs := s.SetBatch([]Cell[int64]{{X: 1 << 61, Y: 1 << 61, V: 1}, {X: 1, Y: 1, V: 7}})
	if !errors.Is(errs[0], numtheory.ErrOverflow) || errs[1] != nil {
		t.Fatalf("batch overflow isolation: %v", errs)
	}
	if v, ok, err := s.Get(1, 1); err != nil || !ok || v != 7 {
		t.Fatalf("cell after overflow neighbor: %d %v %v", v, ok, err)
	}
}

// TestShardedConcurrent hammers one table from many goroutines — point and
// batched ops plus reshapes and snapshots — under the race detector, and
// verifies a grow-then-fill invariant: once a Set succeeds, the value is
// observable unless shrunk away.
func TestShardedConcurrent(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := NewSharded[int64](core.SquareShell{}, 8, func() extarray.Store[int64] {
		return extarray.NewPagedStore[int64]()
	}, 64, 64, NewMetrics(reg, 8))
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 500; i++ {
				switch {
				case i%97 == 96 && w == 0: // reshaper: grow a row, shrink it back
					if err := s.Resize(65, 64); err != nil {
						t.Error(err)
					}
					if err := s.Resize(64, 64); err != nil {
						t.Error(err)
					}
				case i%50 == 49 && w == 1:
					_ = s.Stats()
					_ = s.Len()
				case i%2 == 0:
					cells := make([]Cell[int64], 16)
					for k := range cells {
						cells[k] = Cell[int64]{X: rng.Int63n(64) + 1, Y: rng.Int63n(64) + 1, V: int64(i)}
					}
					for k, err := range s.SetBatch(cells) {
						if err != nil {
							t.Errorf("SetBatch[%d]: %v", k, err)
						}
					}
				default:
					keys := make([]Pos, 16)
					for k := range keys {
						keys[k] = Pos{X: rng.Int63n(64) + 1, Y: rng.Int63n(64) + 1}
					}
					for k, gr := range s.GetBatch(keys) {
						if gr.Err != nil {
							t.Errorf("GetBatch[%d]: %v", k, gr.Err)
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	// Per-shard counters saw every cell op.
	var total int64
	for i := 0; i < s.NumShards(); i++ {
		total += reg.Counter("tabled_shard_ops_total", obs.L("shard", fmt.Sprint(i))).Value()
	}
	if total == 0 {
		t.Error("no shard ops recorded")
	}
}
