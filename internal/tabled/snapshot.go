package tabled

import (
	"fmt"
	"io"
	"os"

	"pairfn/internal/core"
	"pairfn/internal/extarray"
)

// Save serializes the table in the extarray snapshot format (one wire
// format for the whole repo: an extarray.Array can load a tabled snapshot
// under the same mapping). All shard read locks are held for the duration,
// so the snapshot is a consistent cut; writers queue behind it like behind
// a reshape.
func (s *Sharded[T]) Save(w io.Writer) error {
	return s.SaveAt(w, 0, 0)
}

// SaveAt is Save with the replication cut stamped into the snapshot: the
// table state being written is exactly the effect of WAL records [0, seq)
// under primary epoch. The caller (typically inside walog.CheckpointSeq or
// walog.Cut, which block appends) is responsible for seq actually being
// the cut of the state snapshotted here.
func (s *Sharded[T]) SaveAt(w io.Writer, seq, epoch uint64) error {
	for i := range s.shards {
		s.shards[i].mu.RLock()
	}
	defer func() {
		for i := len(s.shards) - 1; i >= 0; i-- {
			s.shards[i].mu.RUnlock()
		}
	}()
	snap := extarray.SnapshotData[T]{
		Mapping:   s.f.Name(),
		Rows:      s.rows,
		Cols:      s.cols,
		Stats:     s.statsLocked(),
		ReplSeq:   seq,
		ReplEpoch: epoch,
	}
	for x := int64(1); x <= s.rows; x++ {
		for y := int64(1); y <= s.cols; y++ {
			addr, err := s.f.Encode(x, y)
			if err != nil {
				return fmt.Errorf("tabled: Save: %w", err)
			}
			if v, ok := s.shardOf(addr).store.Get(addr); ok {
				snap.Addrs = append(snap.Addrs, addr)
				snap.Values = append(snap.Values, v)
			}
		}
	}
	return extarray.EncodeSnapshot(w, &snap)
}

// statsLocked aggregates stats while the caller holds every shard lock.
func (s *Sharded[T]) statsLocked() extarray.Stats {
	st := extarray.Stats{Reshapes: s.reshapes}
	for i := range s.shards {
		sh := &s.shards[i]
		st.Moves += sh.moves
		if sh.footprint > st.Footprint {
			st.Footprint = sh.footprint
		}
		if m := sh.store.MaxAddr(); m > st.Footprint {
			st.Footprint = m
		}
	}
	return st
}

// SaveFile atomically persists the table to path (temp file + fsync +
// rename via extarray.AtomicWriteFile): the previous snapshot survives any
// failure or crash mid-write.
func (s *Sharded[T]) SaveFile(path string) error {
	return s.SaveFileAt(path, 0, 0)
}

// SaveFileAt is SaveFile with the replication cut stamped in (see SaveAt).
func (s *Sharded[T]) SaveFileAt(path string, seq, epoch uint64) error {
	return extarray.AtomicWriteFile(path, func(w io.Writer) error { return s.SaveAt(w, seq, epoch) })
}

// LoadSharded reconstructs a Sharded table from a snapshot written by Save
// (or by extarray's Array.Save). The caller supplies the same storage
// mapping (checked by name) and the shard geometry; every address is
// validated to decode into the snapshot's logical box before it is
// trusted.
func LoadSharded[T any](r io.Reader, f core.StorageMapping, nshards int, newStore func() extarray.Store[T], m *Metrics) (*Sharded[T], error) {
	s, _, _, err := LoadShardedMeta[T](r, f, nshards, newStore, m)
	return s, err
}

// LoadShardedMeta is LoadSharded returning the replication cut stamped
// into the snapshot as well: the table is the effect of WAL records
// [0, seq) under primary epoch — the numbers the caller hands to
// walog.Open (SnapshotSeq/SnapshotEpoch) so the boot rule can resolve
// checkpoint and reseed crash windows.
func LoadShardedMeta[T any](r io.Reader, f core.StorageMapping, nshards int, newStore func() extarray.Store[T], m *Metrics) (_ *Sharded[T], seq, epoch uint64, _ error) {
	snap, err := extarray.DecodeSnapshot[T](r)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("tabled: load: %w", err)
	}
	if snap.Mapping != f.Name() {
		return nil, 0, 0, fmt.Errorf("tabled: load: snapshot was laid out by %q, not %q",
			snap.Mapping, f.Name())
	}
	s, err := NewSharded[T](f, nshards, newStore, snap.Rows, snap.Cols, m)
	if err != nil {
		return nil, 0, 0, err
	}
	for i, addr := range snap.Addrs {
		if _, _, err := extarray.CheckSnapshotAddr(snap, f, addr); err != nil {
			return nil, 0, 0, fmt.Errorf("tabled: load: %w", err)
		}
		sh := s.shardOf(addr)
		sh.store.Set(addr, snap.Values[i])
		if addr > sh.footprint {
			sh.footprint = addr
		}
	}
	s.reshapes = snap.Stats.Reshapes
	// Moves cannot be attributed to shards after the fact; keep the
	// aggregate by crediting shard 0.
	s.shards[0].moves = snap.Stats.Moves
	return s, snap.ReplSeq, snap.ReplEpoch, nil
}

// LoadShardedFile is LoadSharded over a file written by SaveFile.
func LoadShardedFile[T any](path string, f core.StorageMapping, nshards int, newStore func() extarray.Store[T], m *Metrics) (*Sharded[T], error) {
	s, _, _, err := LoadShardedFileMeta[T](path, f, nshards, newStore, m)
	return s, err
}

// LoadShardedFileMeta is LoadShardedMeta over a file written by SaveFile.
func LoadShardedFileMeta[T any](path string, f core.StorageMapping, nshards int, newStore func() extarray.Store[T], m *Metrics) (*Sharded[T], uint64, uint64, error) {
	r, err := os.Open(path)
	if err != nil {
		return nil, 0, 0, err
	}
	defer r.Close()
	return LoadShardedMeta[T](r, f, nshards, newStore, m)
}

// RestoreSnapshot replaces the table's entire contents with snap — the
// reseed install step, running against a live table under every shard
// write lock so concurrent readers see either the old state or the new
// one, never a mix. The snapshot's mapping and every address are validated
// before any lock is taken; a validation failure leaves the table
// untouched.
func (s *Sharded[T]) RestoreSnapshot(snap *extarray.SnapshotData[T]) error {
	if snap.Mapping != s.f.Name() {
		return fmt.Errorf("tabled: restore: snapshot was laid out by %q, not %q",
			snap.Mapping, s.f.Name())
	}
	for _, addr := range snap.Addrs {
		if _, _, err := extarray.CheckSnapshotAddr(snap, s.f, addr); err != nil {
			return fmt.Errorf("tabled: restore: %w", err)
		}
	}
	s.lockAll()
	defer s.unlockAll()
	for i := range s.shards {
		s.shards[i].store = s.newStore()
		s.shards[i].moves = 0
		s.shards[i].footprint = 0
	}
	for i, addr := range snap.Addrs {
		sh := s.shardOf(addr)
		sh.store.Set(addr, snap.Values[i])
		if addr > sh.footprint {
			sh.footprint = addr
		}
	}
	s.rows, s.cols = snap.Rows, snap.Cols
	s.reshapes = snap.Stats.Reshapes
	s.shards[0].moves = snap.Stats.Moves
	return nil
}
