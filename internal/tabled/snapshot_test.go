package tabled

import (
	"bytes"
	"path/filepath"
	"testing"

	"pairfn/internal/core"
	"pairfn/internal/extarray"
)

func pagedStore() extarray.Store[string] { return extarray.NewPagedStore[string]() }

// TestShardedSnapshotRoundTrip saves a sharded table and reloads it — with
// a different shard count, which must not matter: the wire format is
// geometry-free.
func TestShardedSnapshotRoundTrip(t *testing.T) {
	f := core.SquareShell{}
	s, err := NewSharded[string](f, 8, pagedStore, 32, 32, nil)
	if err != nil {
		t.Fatal(err)
	}
	for x := int64(1); x <= 32; x += 3 {
		for y := int64(1); y <= 32; y += 5 {
			if err := s.Set(x, y, "v"); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Resize(40, 32); err != nil { // a reshape for the stats
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	l, err := LoadSharded[string](bytes.NewReader(buf.Bytes()), f, 2, pagedStore, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r, c := l.Dims(); r != 40 || c != 32 {
		t.Fatalf("dims after load: %d×%d", r, c)
	}
	if l.Len() != s.Len() {
		t.Fatalf("Len %d vs %d", l.Len(), s.Len())
	}
	for x := int64(1); x <= 32; x += 3 {
		for y := int64(1); y <= 32; y += 5 {
			if v, ok, err := l.Get(x, y); err != nil || !ok || v != "v" {
				t.Fatalf("Get(%d,%d) after load: %q %v %v", x, y, v, ok, err)
			}
		}
	}
	if st := l.Stats(); st.Reshapes != 1 {
		t.Fatalf("reshapes after load = %d", st.Reshapes)
	}
	// Wrong mapping is rejected by name.
	if _, err := LoadSharded[string](bytes.NewReader(buf.Bytes()), core.Diagonal{}, 2, pagedStore, nil); err == nil {
		t.Fatal("load under wrong mapping should fail")
	}
}

// TestSnapshotCrossCompatible verifies the single-wire-format promise:
// extarray.Array loads a tabled snapshot, and tabled loads an Array
// snapshot, under the same mapping.
func TestSnapshotCrossCompatible(t *testing.T) {
	f := core.Diagonal{}

	s, err := NewSharded[string](f, 4, pagedStore, 10, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Set(3, 4, "from-tabled"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	arr, err := extarray.Load[string](&buf, f, extarray.NewMapStore[string]())
	if err != nil {
		t.Fatal(err)
	}
	if v, ok, err := arr.Get(3, 4); err != nil || !ok || v != "from-tabled" {
		t.Fatalf("Array loading tabled snapshot: %q %v %v", v, ok, err)
	}

	buf.Reset()
	if err := arr.Set(5, 6, "from-array"); err != nil {
		t.Fatal(err)
	}
	if err := arr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	s2, err := LoadSharded[string](&buf, f, 16, pagedStore, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok, err := s2.Get(5, 6); err != nil || !ok || v != "from-array" {
		t.Fatalf("tabled loading Array snapshot: %q %v %v", v, ok, err)
	}
}

// TestShardedSaveFileAtomic exercises the file path: SaveFile twice (the
// second must atomically replace), then load.
func TestShardedSaveFileAtomic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tabled.gob")
	f := core.SquareShell{}
	s, err := NewSharded[string](f, 4, pagedStore, 8, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Set(1, 1, "a"); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if err := s.Set(2, 2, "b"); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	l, err := LoadShardedFile[string](path, f, 4, pagedStore, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		x, y int64
		want string
	}{{1, 1, "a"}, {2, 2, "b"}} {
		if v, ok, err := l.Get(tc.x, tc.y); err != nil || !ok || v != tc.want {
			t.Fatalf("Get(%d,%d) = %q %v %v", tc.x, tc.y, v, ok, err)
		}
	}
}
