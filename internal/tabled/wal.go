package tabled

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"pairfn/internal/extarray"
)

// This file is the durability layer promised by §3's growth guarantee: a
// table that never remaps surviving elements is only trustworthy if the
// elements themselves survive a crash. The write-ahead log records every
// acknowledged set and resize as a CRC32-framed record (extarray's frame
// format) and fsyncs — directly or through a group-commit window — before
// the HTTP response leaves the server.
//
// Ordering contract: mutations are applied to the in-memory table FIRST,
// then logged, then acknowledged. Both steps happen before the ack, so an
// acknowledged write is always in memory AND durable; a crash between
// apply and log loses only writes that were never acknowledged, which is
// the contract clients get. Checkpoint holds the WAL lock across the
// snapshot save, so no acknowledged write can land between the snapshot's
// consistent cut and the log truncation — anything in memory at the cut is
// in the snapshot, and anything logged after the cut replays idempotently
// on top of it. (Two *concurrent* requests racing on the same cell may be
// logged in either order, matching their undefined apply order; requests
// from one client are naturally serialized by request/response.)

// WAL record kinds.
const (
	walKindSet    = byte(1) // a batch of cell writes
	walKindResize = byte(2) // a dimension change
)

// maxWALChunkCells bounds one set record so a single frame stays far below
// extarray.MaxFramePayload even with large values; bigger batches are
// split across consecutive frames (the split is invisible to replay).
const maxWALChunkCells = 4096

// ErrWALClosed is returned by appends after Close.
var ErrWALClosed = errors.New("tabled: wal closed")

// A WALRecord is one replayed log entry, handed to the apply callback of
// OpenWAL in log order.
type WALRecord struct {
	Kind  byte
	Cells []Cell[string] // walKindSet
	Rows  int64          // walKindResize
	Cols  int64
}

// WALFile is the handle the WAL appends through. *os.File satisfies it;
// the fault-injection layer (FaultFile) wraps it to exercise torn writes
// and sync failures.
type WALFile interface {
	io.Writer
	Sync() error
	Truncate(size int64) error
	Seek(offset int64, whence int) (int64, error)
	Close() error
}

// WALOptions configures OpenWAL.
type WALOptions struct {
	// SyncWindow is the group-commit window: appends within one window
	// share a single fsync, trading up to SyncWindow of added ack latency
	// for an order-of-magnitude fewer syncs under load. 0 fsyncs every
	// append (strictest, slowest).
	SyncWindow time.Duration
	// Metrics receives wal_* instrumentation (nil records nothing).
	Metrics *Metrics
	// WrapFile, when non-nil, wraps the append-side file handle — the
	// fault-injection seam. Replay always reads the raw file.
	WrapFile func(WALFile) WALFile
}

// A WAL is an append-only, CRC-framed, fsync-before-ack log of table
// mutations. All methods are safe for concurrent use. A WAL that hits an
// append or sync failure becomes sticky-failed: every later append returns
// the original error, and the server is expected to degrade to read-only
// (the already-applied but unacknowledged suffix is truncated as a torn
// tail on the next boot).
type WAL struct {
	path   string
	window time.Duration
	m      *Metrics

	mu      sync.Mutex
	f       WALFile
	size    int64
	failed  error
	closed  bool
	waiters []chan error

	kick chan struct{}
	done chan struct{}
}

// OpenWAL opens (creating if absent) the log at path, replays every intact
// record through apply in log order, truncates any torn or corrupt tail,
// and returns the WAL positioned for appends. Replayed records are exactly
// the acknowledged mutations since the snapshot the caller just loaded;
// applying them is idempotent, so replaying a tail twice (e.g. after a
// crash during a previous recovery) converges to the same state.
func OpenWAL(path string, apply func(WALRecord) error, opt WALOptions) (*WAL, int, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, 0, fmt.Errorf("tabled: wal open: %w", err)
	}
	replayed := 0
	valid, torn, err := extarray.ReadFrames(f, func(payload []byte) error {
		rec, err := decodeWALRecord(payload)
		if err != nil {
			return err
		}
		if err := apply(rec); err != nil {
			return err
		}
		replayed++
		return nil
	})
	if err != nil {
		f.Close()
		return nil, replayed, fmt.Errorf("tabled: wal replay %s: %w", path, err)
	}
	if torn {
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, replayed, fmt.Errorf("tabled: wal truncate torn tail: %w", err)
		}
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, replayed, fmt.Errorf("tabled: wal seek: %w", err)
	}
	if torn {
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, replayed, fmt.Errorf("tabled: wal sync after truncate: %w", err)
		}
	}
	// Make the log file's existence itself durable (first boot creates it).
	if err := extarray.SyncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, replayed, err
	}
	var wf WALFile = f
	if opt.WrapFile != nil {
		wf = opt.WrapFile(wf)
	}
	w := &WAL{
		path:   path,
		window: opt.SyncWindow,
		m:      opt.Metrics,
		f:      wf,
		size:   valid,
		kick:   make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	w.m.walReplay(replayed, torn)
	w.m.walSize(w.size)
	if w.window > 0 {
		go w.syncer()
	} else {
		close(w.done)
	}
	return w, replayed, nil
}

// Size returns the current log length in bytes.
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// Err returns the sticky failure, if any.
func (w *WAL) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.failed
}

// AppendSet logs a batch of acknowledged cell writes. It returns only
// after the record is durable (fsynced, possibly as part of a group
// commit). Large batches are split across frames.
func (w *WAL) AppendSet(cells []Cell[string]) error {
	for len(cells) > 0 {
		n := len(cells)
		if n > maxWALChunkCells {
			n = maxWALChunkCells
		}
		if err := w.append(encodeSetRecord(cells[:n])); err != nil {
			return err
		}
		cells = cells[n:]
	}
	return nil
}

// AppendResize logs an acknowledged dimension change.
func (w *WAL) AppendResize(rows, cols int64) error {
	return w.append(encodeResizeRecord(rows, cols))
}

// append frames payload into the log and waits for durability.
func (w *WAL) append(payload []byte) error {
	w.mu.Lock()
	if w.failed != nil {
		err := w.failed
		w.mu.Unlock()
		return err
	}
	if w.closed {
		w.mu.Unlock()
		return ErrWALClosed
	}
	n, err := extarray.AppendFrame(w.f, payload)
	if err != nil {
		// Bytes may be on disk (a torn frame); the next boot truncates it.
		// Any write failure is sticky: the log can no longer attest
		// durability, so the server must stop acknowledging writes.
		w.failed = fmt.Errorf("tabled: wal append: %w", err)
		w.size += int64(n)
		err := w.failed
		w.mu.Unlock()
		return err
	}
	w.size += int64(n)
	w.m.walAppend(int64(n))
	w.m.walSize(w.size)
	if w.window <= 0 {
		err := w.syncLocked()
		w.mu.Unlock()
		return err
	}
	ch := make(chan error, 1)
	w.waiters = append(w.waiters, ch)
	select {
	case w.kick <- struct{}{}:
	default: // a sync is already scheduled; it will cover this record
	}
	w.mu.Unlock()
	return <-ch
}

// syncLocked fsyncs under w.mu and records the outcome. A failure is
// sticky.
func (w *WAL) syncLocked() error {
	start := time.Now()
	err := w.f.Sync()
	w.m.walSync(time.Since(start), err)
	if err != nil {
		w.failed = fmt.Errorf("tabled: wal sync: %w", err)
		return w.failed
	}
	return nil
}

// syncer is the group-commit loop: each kick waits out the window so
// concurrent appends pile onto one fsync, then syncs and releases every
// waiter with the shared result.
func (w *WAL) syncer() {
	defer close(w.done)
	for range w.kick {
		time.Sleep(w.window)
		w.mu.Lock()
		err := w.syncLocked()
		ws := w.waiters
		w.waiters = nil
		w.mu.Unlock()
		for _, ch := range ws {
			ch <- err
		}
	}
	// Close drained the kick channel; release any stragglers after one
	// final sync so no acknowledged-pending writer is left hanging.
	w.mu.Lock()
	var err error
	if len(w.waiters) > 0 {
		err = w.syncLocked()
	}
	ws := w.waiters
	w.waiters = nil
	w.mu.Unlock()
	for _, ch := range ws {
		ch <- err
	}
}

// Checkpoint runs save (which must persist a consistent snapshot of the
// table, e.g. Sharded.SaveFile via AtomicWriteFile) and then resets the
// log to empty: the snapshot now carries everything the log carried.
// Appends are blocked for the duration, which is what makes the cut
// airtight — see the ordering contract at the top of this file. On a
// sticky-failed WAL the snapshot is still taken (it may be the last good
// persistence this process manages) but the log is left alone and the
// failure is returned.
func (w *WAL) Checkpoint(save func() error) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := save(); err != nil {
		return err
	}
	if w.failed != nil {
		return w.failed
	}
	if w.closed {
		return ErrWALClosed
	}
	if err := w.f.Truncate(0); err != nil {
		w.failed = fmt.Errorf("tabled: wal checkpoint truncate: %w", err)
		return w.failed
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		w.failed = fmt.Errorf("tabled: wal checkpoint seek: %w", err)
		return w.failed
	}
	w.size = 0
	w.m.walSize(0)
	w.m.walCheckpoint()
	return w.syncLocked()
}

// Close syncs outstanding records and closes the file. Appends after
// Close return ErrWALClosed.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	if w.window > 0 {
		close(w.kick) // safe: appends check closed under mu before kicking
	}
	w.mu.Unlock()
	<-w.done
	w.mu.Lock()
	defer w.mu.Unlock()
	var err error
	if w.failed == nil {
		err = w.syncLocked()
	}
	if cerr := w.f.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("tabled: wal close: %w", cerr)
	}
	return err
}

// encodeSetRecord serializes a set batch:
//
//	kind=1, uvarint count, then per cell: varint x, varint y,
//	uvarint len(v), v bytes
func encodeSetRecord(cells []Cell[string]) []byte {
	size := 1 + binary.MaxVarintLen64
	for _, c := range cells {
		size += 2*binary.MaxVarintLen64 + binary.MaxVarintLen64 + len(c.V)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, walKindSet)
	buf = binary.AppendUvarint(buf, uint64(len(cells)))
	for _, c := range cells {
		buf = binary.AppendVarint(buf, c.X)
		buf = binary.AppendVarint(buf, c.Y)
		buf = binary.AppendUvarint(buf, uint64(len(c.V)))
		buf = append(buf, c.V...)
	}
	return buf
}

// encodeResizeRecord serializes a resize: kind=2, varint rows, varint cols.
func encodeResizeRecord(rows, cols int64) []byte {
	buf := make([]byte, 0, 1+2*binary.MaxVarintLen64)
	buf = append(buf, walKindResize)
	buf = binary.AppendVarint(buf, rows)
	buf = binary.AppendVarint(buf, cols)
	return buf
}

// decodeWALRecord parses one frame payload. Frames are CRC-protected, so a
// decode failure here means a version mismatch or an encoder bug, not bit
// rot — it aborts replay rather than being skipped.
func decodeWALRecord(payload []byte) (WALRecord, error) {
	if len(payload) == 0 {
		return WALRecord{}, errors.New("empty wal record")
	}
	kind, rest := payload[0], payload[1:]
	switch kind {
	case walKindSet:
		count, n := binary.Uvarint(rest)
		if n <= 0 || count > maxWALChunkCells {
			return WALRecord{}, fmt.Errorf("wal set record: bad count")
		}
		rest = rest[n:]
		cells := make([]Cell[string], 0, count)
		for i := uint64(0); i < count; i++ {
			x, n := binary.Varint(rest)
			if n <= 0 {
				return WALRecord{}, fmt.Errorf("wal set record: bad x at cell %d", i)
			}
			rest = rest[n:]
			y, n := binary.Varint(rest)
			if n <= 0 {
				return WALRecord{}, fmt.Errorf("wal set record: bad y at cell %d", i)
			}
			rest = rest[n:]
			vlen, n := binary.Uvarint(rest)
			if n <= 0 || uint64(len(rest[n:])) < vlen {
				return WALRecord{}, fmt.Errorf("wal set record: bad value at cell %d", i)
			}
			rest = rest[n:]
			cells = append(cells, Cell[string]{X: x, Y: y, V: string(rest[:vlen])})
			rest = rest[vlen:]
		}
		if len(rest) != 0 {
			return WALRecord{}, errors.New("wal set record: trailing bytes")
		}
		return WALRecord{Kind: walKindSet, Cells: cells}, nil
	case walKindResize:
		rows, n := binary.Varint(rest)
		if n <= 0 {
			return WALRecord{}, errors.New("wal resize record: bad rows")
		}
		rest = rest[n:]
		cols, n := binary.Varint(rest)
		if n <= 0 {
			return WALRecord{}, errors.New("wal resize record: bad cols")
		}
		if len(rest[n:]) != 0 {
			return WALRecord{}, errors.New("wal resize record: trailing bytes")
		}
		return WALRecord{Kind: walKindResize, Rows: rows, Cols: cols}, nil
	}
	return WALRecord{}, fmt.Errorf("unknown wal record kind %d", kind)
}

// ApplyWALRecord applies one replayed record to a backend — the shared
// replay step used by the server at boot and by recovery tests. Per-cell
// bounds errors are impossible for records that were acknowledged against
// the same state evolution (resizes replay in order too), so any error is
// surfaced.
func ApplyWALRecord(b Backend[string], rec WALRecord) error {
	switch rec.Kind {
	case walKindSet:
		for _, err := range b.SetBatch(rec.Cells) {
			if err != nil {
				return fmt.Errorf("tabled: wal replay set: %w", err)
			}
		}
		return nil
	case walKindResize:
		if err := b.Resize(rec.Rows, rec.Cols); err != nil {
			return fmt.Errorf("tabled: wal replay resize: %w", err)
		}
		return nil
	}
	return fmt.Errorf("tabled: wal replay: unknown kind %d", rec.Kind)
}
