package tabled

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"pairfn/internal/walog"
)

// This file is the durability layer promised by §3's growth guarantee: a
// table that never remaps surviving elements is only trustworthy if the
// elements themselves survive a crash. The write-ahead log records every
// acknowledged set and resize as a CRC32-framed record and fsyncs —
// directly or through a group-commit window — before the HTTP response
// leaves the server. The append/fsync/replay/checkpoint mechanics live in
// the shared internal/walog core (lifted out of this file so the WBC
// coordinator journal runs the same loop); what remains here is the tabled
// record codec and the typed wrapper.
//
// Ordering contract: mutations are applied to the in-memory table FIRST,
// then logged, then acknowledged. Both steps happen before the ack, so an
// acknowledged write is always in memory AND durable; a crash between
// apply and log loses only writes that were never acknowledged, which is
// the contract clients get. Checkpoint holds the WAL lock across the
// snapshot save, so no acknowledged write can land between the snapshot's
// consistent cut and the log truncation — anything in memory at the cut is
// in the snapshot, and anything logged after the cut replays idempotently
// on top of it. (Two *concurrent* requests racing on the same cell may be
// logged in either order, matching their undefined apply order; requests
// from one client are naturally serialized by request/response.)

// WAL record kinds.
const (
	walKindSet    = byte(1) // a batch of cell writes
	walKindResize = byte(2) // a dimension change
)

// maxWALChunkCells bounds one set record so a single frame stays far below
// extarray.MaxFramePayload even with large values; bigger batches are
// split across consecutive frames (the split is invisible to replay).
const maxWALChunkCells = 4096

// ErrWALClosed is returned by appends after Close.
var ErrWALClosed = walog.ErrClosed

// A WALRecord is one replayed log entry, handed to the apply callback of
// OpenWAL in log order.
type WALRecord struct {
	Kind  byte
	Cells []Cell[string] // walKindSet
	Rows  int64          // walKindResize
	Cols  int64
}

// WALFile is the handle the WAL appends through. *os.File satisfies it;
// the fault-injection layer (FaultFile) wraps it to exercise torn writes
// and sync failures.
type WALFile = walog.File

// WALOptions configures OpenWAL.
type WALOptions struct {
	// SyncWindow is the group-commit window: appends within one window
	// share a single fsync, trading up to SyncWindow of added ack latency
	// for an order-of-magnitude fewer syncs under load. 0 fsyncs every
	// append (strictest, slowest).
	SyncWindow time.Duration
	// Metrics receives wal_* instrumentation (nil records nothing).
	Metrics *Metrics
	// WrapFile, when non-nil, wraps the append-side file handle — the
	// fault-injection seam. Replay always reads the raw file.
	WrapFile func(WALFile) WALFile
	// StatePath, when non-empty, names the durable stream-state sidecar:
	// the log's base sequence and epoch marks survive restarts (see
	// walog.Options.StatePath). Replicated servers must set it.
	StatePath string
	// SnapshotSeq/SnapshotEpoch are the replication cut embedded in the
	// snapshot the caller just loaded (LoadShardedFileMeta); they drive
	// the boot rule that discards a log the snapshot subsumes.
	SnapshotSeq   uint64
	SnapshotEpoch uint64
}

// A WAL is an append-only, CRC-framed, fsync-before-ack log of table
// mutations. All methods are safe for concurrent use. A WAL that hits an
// append or sync failure becomes sticky-failed: every later append returns
// the original error, and the server is expected to degrade to read-only
// (the already-applied but unacknowledged suffix is truncated as a torn
// tail on the next boot).
type WAL struct {
	log *walog.Log
}

// walObserver adapts the shared log's instrumentation hook to the tabled
// Metrics bundle (whose methods are nil-receiver-safe).
type walObserver struct{ m *Metrics }

func (o walObserver) LogAppend(n int64)                  { o.m.walAppend(n) }
func (o walObserver) LogSync(d time.Duration, err error) { o.m.walSync(d, err) }
func (o walObserver) LogSize(n int64)                    { o.m.walSize(n) }
func (o walObserver) LogReplay(records int, torn bool)   { o.m.walReplay(records, torn) }
func (o walObserver) LogCheckpoint()                     { o.m.walCheckpoint() }

// OpenWAL opens (creating if absent) the log at path, replays every intact
// record through apply in log order, truncates any torn or corrupt tail,
// and returns the WAL positioned for appends. Replayed records are exactly
// the acknowledged mutations since the snapshot the caller just loaded;
// applying them is idempotent, so replaying a tail twice (e.g. after a
// crash during a previous recovery) converges to the same state.
func OpenWAL(path string, apply func(WALRecord) error, opt WALOptions) (*WAL, int, error) {
	l, replayed, err := walog.Open(path, func(payload []byte) error {
		rec, err := decodeWALRecord(payload)
		if err != nil {
			return err
		}
		return apply(rec)
	}, walog.Options{
		SyncWindow:    opt.SyncWindow,
		Observer:      walObserver{opt.Metrics},
		WrapFile:      opt.WrapFile,
		Name:          "tabled: wal",
		StatePath:     opt.StatePath,
		SnapshotSeq:   opt.SnapshotSeq,
		SnapshotEpoch: opt.SnapshotEpoch,
	})
	if err != nil {
		return nil, replayed, err
	}
	return &WAL{log: l}, replayed, nil
}

// Size returns the current log length in bytes.
func (w *WAL) Size() int64 { return w.log.Size() }

// Err returns the sticky failure, if any.
func (w *WAL) Err() error { return w.log.Err() }

// AppendSet logs a batch of acknowledged cell writes. It returns only
// after the record is durable (fsynced, possibly as part of a group
// commit). Large batches are split across frames.
func (w *WAL) AppendSet(cells []Cell[string]) error {
	for len(cells) > 0 {
		n := len(cells)
		if n > maxWALChunkCells {
			n = maxWALChunkCells
		}
		if err := w.log.Append(encodeSetRecord(cells[:n])); err != nil {
			return err
		}
		cells = cells[n:]
	}
	return nil
}

// AppendResize logs an acknowledged dimension change.
func (w *WAL) AppendResize(rows, cols int64) error {
	return w.log.Append(encodeResizeRecord(rows, cols))
}

// Checkpoint runs save (which must persist a consistent snapshot of the
// table, e.g. Sharded.SaveFile via AtomicWriteFile) and then resets the
// log to empty: the snapshot now carries everything the log carried.
// Appends are blocked for the duration, which is what makes the cut
// airtight — see the ordering contract at the top of this file. On a
// sticky-failed WAL the snapshot is still taken (it may be the last good
// persistence this process manages) but the log is left alone and the
// failure is returned.
func (w *WAL) Checkpoint(save func() error) error {
	return w.log.Checkpoint(save)
}

// CheckpointAt is Checkpoint with the cut sequence handed to save so the
// snapshot can embed it (Sharded.SaveFileAt): the boot rule then resolves
// any crash between the snapshot write and the log truncation. See
// walog.Log.CheckpointSeq.
func (w *WAL) CheckpointAt(save func(cut uint64) error) error {
	return w.log.CheckpointSeq(save)
}

// Cut syncs the log and hands save the durable horizon and its epoch while
// appends are blocked — the /v1/repl/snapshot serving primitive. See
// walog.Log.Cut.
func (w *WAL) Cut(save func(cut, epoch uint64) error) error {
	return w.log.Cut(save)
}

// ResetTo discards every record and reseats the log at seq under epoch —
// the reseed install step, run after the fetched snapshot is durably on
// disk. See walog.Log.ResetTo.
func (w *WAL) ResetTo(seq, epoch uint64) error { return w.log.ResetTo(seq, epoch) }

// Epoch returns the WAL's current primary epoch (0 before any promotion).
func (w *WAL) Epoch() uint64 { return w.log.Epoch() }

// EpochAt returns the epoch record seq was (or will be) appended under.
func (w *WAL) EpochAt(seq uint64) uint64 { return w.log.EpochAt(seq) }

// SetEpoch durably advances the epoch — the promotion path. See
// walog.Log.SetEpoch.
func (w *WAL) SetEpoch(e uint64) error { return w.log.SetEpoch(e) }

// ObserveEpoch mirrors a source's epoch boundary — the follower path. See
// walog.Log.ObserveEpoch.
func (w *WAL) ObserveEpoch(e, start uint64) error { return w.log.ObserveEpoch(e, start) }

// EpochBarrier reports where history newer than epoch since begins. See
// walog.Log.EpochBarrier.
func (w *WAL) EpochBarrier(since uint64) (start uint64, ok bool) {
	return w.log.EpochBarrier(since)
}

// Close syncs outstanding records and closes the file. Appends after
// Close return ErrWALClosed.
func (w *WAL) Close() error { return w.log.Close() }

// SeqState reports the log's sequence line: records [base, next) are
// durable, with [0, base) already folded into a snapshot by checkpoints.
// Record sequence numbers are stable across checkpoints — the replication
// protocol's coordinate system.
func (w *WAL) SeqState() (base, next uint64) { return w.log.SeqState() }

// WaitCommitted blocks until at least seq records are durable (the
// /v1/repl/frames long-poll primitive). See walog.Log.WaitCommitted.
func (w *WAL) WaitCommitted(ctx context.Context, seq uint64) error {
	return w.log.WaitCommitted(ctx, seq)
}

// Tail serves committed records [from, next) as raw CRC-framed bytes for
// replication. See walog.Log.Tail for chunking and the divergence errors
// (walog.ErrSeqGap, walog.ErrSeqAhead).
func (w *WAL) Tail(from uint64, maxBytes int) (frames []byte, next uint64, err error) {
	return w.log.Tail(from, maxBytes)
}

// AppendRaw appends one already-encoded record payload, fsynced before
// return — the follower ingestion path. The follower re-appends exactly
// the payload bytes the primary framed, so its log is a byte-identical
// prefix of the primary's and its record count IS its replication
// position: boot replay of its own log recovers the applied sequence with
// no separate counter to persist.
func (w *WAL) AppendRaw(payload []byte) error { return w.log.Append(payload) }

// DecodeRecord parses one frame payload into a typed record — exposed for
// the follower, which receives primary payloads over the wire and must
// both apply and re-log them.
func DecodeRecord(payload []byte) (WALRecord, error) { return decodeWALRecord(payload) }

// encodeSetRecord serializes a set batch:
//
//	kind=1, uvarint count, then per cell: varint x, varint y,
//	uvarint len(v), v bytes
func encodeSetRecord(cells []Cell[string]) []byte {
	size := 1 + binary.MaxVarintLen64
	for _, c := range cells {
		size += 2*binary.MaxVarintLen64 + binary.MaxVarintLen64 + len(c.V)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, walKindSet)
	buf = binary.AppendUvarint(buf, uint64(len(cells)))
	for _, c := range cells {
		buf = binary.AppendVarint(buf, c.X)
		buf = binary.AppendVarint(buf, c.Y)
		buf = binary.AppendUvarint(buf, uint64(len(c.V)))
		buf = append(buf, c.V...)
	}
	return buf
}

// encodeResizeRecord serializes a resize: kind=2, varint rows, varint cols.
func encodeResizeRecord(rows, cols int64) []byte {
	buf := make([]byte, 0, 1+2*binary.MaxVarintLen64)
	buf = append(buf, walKindResize)
	buf = binary.AppendVarint(buf, rows)
	buf = binary.AppendVarint(buf, cols)
	return buf
}

// decodeWALRecord parses one frame payload. Frames are CRC-protected, so a
// decode failure here means a version mismatch or an encoder bug, not bit
// rot — it aborts replay rather than being skipped.
func decodeWALRecord(payload []byte) (WALRecord, error) {
	if len(payload) == 0 {
		return WALRecord{}, errors.New("empty wal record")
	}
	kind, rest := payload[0], payload[1:]
	switch kind {
	case walKindSet:
		count, n := binary.Uvarint(rest)
		if n <= 0 || count > maxWALChunkCells {
			return WALRecord{}, fmt.Errorf("wal set record: bad count")
		}
		rest = rest[n:]
		cells := make([]Cell[string], 0, count)
		for i := uint64(0); i < count; i++ {
			x, n := binary.Varint(rest)
			if n <= 0 {
				return WALRecord{}, fmt.Errorf("wal set record: bad x at cell %d", i)
			}
			rest = rest[n:]
			y, n := binary.Varint(rest)
			if n <= 0 {
				return WALRecord{}, fmt.Errorf("wal set record: bad y at cell %d", i)
			}
			rest = rest[n:]
			vlen, n := binary.Uvarint(rest)
			if n <= 0 || uint64(len(rest[n:])) < vlen {
				return WALRecord{}, fmt.Errorf("wal set record: bad value at cell %d", i)
			}
			rest = rest[n:]
			cells = append(cells, Cell[string]{X: x, Y: y, V: string(rest[:vlen])})
			rest = rest[vlen:]
		}
		if len(rest) != 0 {
			return WALRecord{}, errors.New("wal set record: trailing bytes")
		}
		return WALRecord{Kind: walKindSet, Cells: cells}, nil
	case walKindResize:
		rows, n := binary.Varint(rest)
		if n <= 0 {
			return WALRecord{}, errors.New("wal resize record: bad rows")
		}
		rest = rest[n:]
		cols, n := binary.Varint(rest)
		if n <= 0 {
			return WALRecord{}, errors.New("wal resize record: bad cols")
		}
		if len(rest[n:]) != 0 {
			return WALRecord{}, errors.New("wal resize record: trailing bytes")
		}
		return WALRecord{Kind: walKindResize, Rows: rows, Cols: cols}, nil
	}
	return WALRecord{}, fmt.Errorf("unknown wal record kind %d", kind)
}

// ApplyWALRecord applies one replayed record to a backend — the shared
// replay step used by the server at boot and by recovery tests. Per-cell
// bounds errors are impossible for records that were acknowledged against
// the same state evolution (resizes replay in order too), so any error is
// surfaced.
func ApplyWALRecord(b Backend[string], rec WALRecord) error {
	switch rec.Kind {
	case walKindSet:
		for _, err := range b.SetBatch(rec.Cells) {
			if err != nil {
				return fmt.Errorf("tabled: wal replay set: %w", err)
			}
		}
		return nil
	case walKindResize:
		if err := b.Resize(rec.Rows, rec.Cols); err != nil {
			return fmt.Errorf("tabled: wal replay resize: %w", err)
		}
		return nil
	}
	return fmt.Errorf("tabled: wal replay: unknown kind %d", rec.Kind)
}
