package tabled

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"pairfn/internal/core"
)

// newWALBackend returns an empty sharded table for WAL tests.
func newWALBackend(t *testing.T, rows, cols int64) *Sharded[string] {
	t.Helper()
	s, err := NewSharded[string](core.SquareShell{}, 4, pagedStore, rows, cols, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// tableState flattens a backend for comparison.
func tableState(t *testing.T, b Backend[string]) map[[2]int64]string {
	t.Helper()
	rows, cols := b.Dims()
	state := map[[2]int64]string{}
	for x := int64(1); x <= rows; x++ {
		for y := int64(1); y <= cols; y++ {
			v, ok, err := b.Get(x, y)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				state[[2]int64{x, y}] = v
			}
		}
	}
	return state
}

func openWALInto(t *testing.T, path string, b Backend[string], opt WALOptions) (*WAL, int) {
	t.Helper()
	w, replayed, err := OpenWAL(path, func(rec WALRecord) error { return ApplyWALRecord(b, rec) }, opt)
	if err != nil {
		t.Fatal(err)
	}
	return w, replayed
}

// TestWALRoundTrip appends sets and a resize, closes, and replays into a
// fresh table: state must match exactly.
func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "table.wal")
	live := newWALBackend(t, 16, 16)
	w, replayed := openWALInto(t, path, live, WALOptions{})
	if replayed != 0 {
		t.Fatalf("fresh log replayed %d records", replayed)
	}

	cells := []Cell[string]{
		{X: 1, Y: 1, V: "a"}, {X: 2, Y: 3, V: "b"}, {X: 16, Y: 16, V: "corner"},
	}
	if errs := live.SetBatch(cells); errs[0] != nil || errs[1] != nil || errs[2] != nil {
		t.Fatal(errs)
	}
	if err := w.AppendSet(cells); err != nil {
		t.Fatal(err)
	}
	if err := live.Resize(32, 16); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendResize(32, 16); err != nil {
		t.Fatal(err)
	}
	late := []Cell[string]{{X: 30, Y: 5, V: "after-grow"}}
	if errs := live.SetBatch(late); errs[0] != nil {
		t.Fatal(errs[0])
	}
	if err := w.AppendSet(late); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	recovered := newWALBackend(t, 16, 16)
	w2, replayed := openWALInto(t, path, recovered, WALOptions{})
	defer w2.Close()
	if replayed != 3 {
		t.Fatalf("replayed %d records, want 3", replayed)
	}
	r, c := recovered.Dims()
	if r != 32 || c != 16 {
		t.Fatalf("recovered dims %d×%d, want 32×16", r, c)
	}
	want := tableState(t, live)
	got := tableState(t, recovered)
	if len(got) != len(want) {
		t.Fatalf("recovered %d cells, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("cell %v: %q, want %q", k, got[k], v)
		}
	}
}

// TestWALReplayIdempotent replays the same tail twice (recovery crashing
// and re-running): the store state must be identical both times.
func TestWALReplayIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "table.wal")
	live := newWALBackend(t, 8, 8)
	w, _ := openWALInto(t, path, live, WALOptions{})
	for i := int64(1); i <= 8; i++ {
		cells := []Cell[string]{{X: i, Y: i, V: fmt.Sprintf("v%d", i)}}
		if err := w.AppendSet(cells); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.AppendResize(12, 8); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	once := newWALBackend(t, 8, 8)
	w1, n1 := openWALInto(t, path, once, WALOptions{})
	w1.Close()

	// Replay the SAME tail twice into another table: a crash after a
	// partial recovery means records can be applied more than once.
	twice := newWALBackend(t, 8, 8)
	w2, _ := openWALInto(t, path, twice, WALOptions{})
	w2.Close()
	w3, n3 := openWALInto(t, path, twice, WALOptions{})
	w3.Close()
	if n1 != 9 || n3 != 9 {
		t.Fatalf("replay counts %d, %d; want 9, 9", n1, n3)
	}

	wantState, gotState := tableState(t, once), tableState(t, twice)
	if len(wantState) != len(gotState) {
		t.Fatalf("double replay: %d cells vs %d", len(gotState), len(wantState))
	}
	for k, v := range wantState {
		if gotState[k] != v {
			t.Errorf("cell %v: %q vs %q", k, gotState[k], v)
		}
	}
	r1, c1 := once.Dims()
	r2, c2 := twice.Dims()
	if r1 != r2 || c1 != c2 {
		t.Fatalf("dims diverge: %d×%d vs %d×%d", r1, c1, r2, c2)
	}
}

// TestWALTornTailTruncated simulates a crash mid-append: garbage half-frame
// at the end of the log must be truncated at boot, keeping every intact
// record, and the truncation must be durable (a second boot sees no tear).
func TestWALTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "table.wal")
	live := newWALBackend(t, 8, 8)
	w, _ := openWALInto(t, path, live, WALOptions{})
	good := []Cell[string]{{X: 1, Y: 1, V: "survives"}}
	if err := w.AppendSet(good); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	goodSize, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	// A torn append: half a frame of a record that was never acknowledged.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xFF, 0x13, 0x09}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rec1 := newWALBackend(t, 8, 8)
	w1, replayed := openWALInto(t, path, rec1, WALOptions{})
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}
	if replayed != 1 {
		t.Fatalf("replayed %d records, want 1", replayed)
	}
	if v, ok, _ := rec1.Get(1, 1); !ok || v != "survives" {
		t.Fatalf("acked record lost: %q %v", v, ok)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != goodSize.Size() {
		t.Fatalf("torn tail not truncated: %d bytes, want %d", after.Size(), goodSize.Size())
	}

	// The truncated log must boot cleanly a second time.
	rec2 := newWALBackend(t, 8, 8)
	w2, replayed2 := openWALInto(t, path, rec2, WALOptions{})
	w2.Close()
	if replayed2 != 1 {
		t.Fatalf("second boot replayed %d, want 1", replayed2)
	}
}

// TestWALCheckpoint verifies the snapshot/truncate cut: after Checkpoint,
// the log is empty, the save ran, and appends continue on the fresh log.
func TestWALCheckpoint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "table.wal")
	snap := filepath.Join(dir, "table.gob")
	live := newWALBackend(t, 8, 8)
	w, _ := openWALInto(t, path, live, WALOptions{})
	defer w.Close()

	pre := []Cell[string]{{X: 2, Y: 2, V: "in-snapshot"}}
	if errs := live.SetBatch(pre); errs[0] != nil {
		t.Fatal(errs[0])
	}
	if err := w.AppendSet(pre); err != nil {
		t.Fatal(err)
	}
	if w.Size() == 0 {
		t.Fatal("log empty before checkpoint")
	}
	if err := w.Checkpoint(func() error { return live.SaveFile(snap) }); err != nil {
		t.Fatal(err)
	}
	if w.Size() != 0 {
		t.Fatalf("log size %d after checkpoint, want 0", w.Size())
	}

	post := []Cell[string]{{X: 3, Y: 3, V: "after-checkpoint"}}
	if errs := live.SetBatch(post); errs[0] != nil {
		t.Fatal(errs[0])
	}
	if err := w.AppendSet(post); err != nil {
		t.Fatal(err)
	}

	// Recovery = snapshot + tail: both cells, each exactly from its layer.
	recovered, err := LoadShardedFile[string](snap, core.SquareShell{}, 4, pagedStore, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := recovered.Get(2, 2); !ok || v != "in-snapshot" {
		t.Fatalf("snapshot cell: %q %v", v, ok)
	}
	if _, ok, _ := recovered.Get(3, 3); ok {
		t.Fatal("post-checkpoint cell leaked into the snapshot")
	}
	w.Close()
	wr, replayed := openWALInto(t, path, recovered, WALOptions{})
	wr.Close()
	if replayed != 1 {
		t.Fatalf("tail replayed %d records, want 1", replayed)
	}
	if v, ok, _ := recovered.Get(3, 3); !ok || v != "after-checkpoint" {
		t.Fatalf("tail cell: %q %v", v, ok)
	}
}

// countingWALFile counts Sync calls, for the group-commit test.
type countingWALFile struct {
	WALFile
	mu    sync.Mutex
	syncs int
}

func (c *countingWALFile) Sync() error {
	c.mu.Lock()
	c.syncs++
	c.mu.Unlock()
	return c.WALFile.Sync()
}

// TestWALGroupCommit runs many concurrent appends under a sync window and
// checks they all become durable while sharing far fewer fsyncs than
// appends.
func TestWALGroupCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "table.wal")
	var cf *countingWALFile
	live := newWALBackend(t, 64, 64)
	w, _ := openWALInto(t, path, live, WALOptions{
		SyncWindow: 5 * time.Millisecond,
		WrapFile: func(f WALFile) WALFile {
			cf = &countingWALFile{WALFile: f}
			return cf
		},
	})

	const appenders, each = 8, 20
	var wg sync.WaitGroup
	for a := 0; a < appenders; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				cells := []Cell[string]{{X: int64(a + 1), Y: int64(i + 1), V: "gc"}}
				if err := w.AppendSet(cells); err != nil {
					t.Error(err)
					return
				}
			}
		}(a)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	cf.mu.Lock()
	syncs := cf.syncs
	cf.mu.Unlock()
	if syncs >= appenders*each {
		t.Fatalf("group commit did not batch: %d syncs for %d appends", syncs, appenders*each)
	}

	recovered := newWALBackend(t, 64, 64)
	w2, replayed := openWALInto(t, path, recovered, WALOptions{})
	w2.Close()
	if replayed != appenders*each {
		t.Fatalf("replayed %d records, want %d", replayed, appenders*each)
	}
}

// TestWALStickyFailure: after an injected sync failure, every subsequent
// append fails with the original error — the degraded-mode contract.
func TestWALStickyFailure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "table.wal")
	fi := NewFaultInjector(&Faults{Seed: 1, SyncErrRate: 1})
	live := newWALBackend(t, 8, 8)
	w, _ := openWALInto(t, path, live, WALOptions{WrapFile: fi.WrapWALFile})
	defer w.Close()

	err := w.AppendSet([]Cell[string]{{X: 1, Y: 1, V: "x"}})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("append = %v, want injected sync failure", err)
	}
	err2 := w.AppendSet([]Cell[string]{{X: 2, Y: 2, V: "y"}})
	if !errors.Is(err2, ErrInjected) {
		t.Fatalf("second append = %v, want sticky failure", err2)
	}
	if w.Err() == nil {
		t.Fatal("Err() should report the sticky failure")
	}
}

// TestWALTornWriteFault: the injected torn write at byte N leaves exactly
// the pre-tear records recoverable, and the tear truncates cleanly.
func TestWALTornWriteFault(t *testing.T) {
	path := filepath.Join(t.TempDir(), "table.wal")
	live := newWALBackend(t, 8, 8)
	// First record is ~20 bytes; tear inside the second.
	fi := NewFaultInjector(&Faults{Seed: 1, TornWriteAt: 30})
	w, _ := openWALInto(t, path, live, WALOptions{WrapFile: fi.WrapWALFile})

	if err := w.AppendSet([]Cell[string]{{X: 1, Y: 1, V: "acked"}}); err != nil {
		t.Fatal(err)
	}
	err := w.AppendSet([]Cell[string]{{X: 2, Y: 2, V: "torn-away"}})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("append across the tear = %v, want injected", err)
	}
	w.Close()

	recovered := newWALBackend(t, 8, 8)
	w2, replayed := openWALInto(t, path, recovered, WALOptions{})
	w2.Close()
	if replayed != 1 {
		t.Fatalf("replayed %d records, want 1 (the acked one)", replayed)
	}
	if v, ok, _ := recovered.Get(1, 1); !ok || v != "acked" {
		t.Fatalf("acked record lost: %q %v", v, ok)
	}
	if _, ok, _ := recovered.Get(2, 2); ok {
		t.Fatal("torn (unacknowledged) record resurrected")
	}
}

func TestWALRecordCodecFuzzish(t *testing.T) {
	// Hand-rolled decode must reject truncations of valid records.
	rec := encodeSetRecord([]Cell[string]{{X: -5, Y: 1 << 40, V: "signed and big"}})
	if _, err := decodeWALRecord(rec); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
	for cut := 0; cut < len(rec); cut++ {
		if _, err := decodeWALRecord(rec[:cut]); err == nil {
			t.Fatalf("truncated record at %d accepted", cut)
		}
	}
	rz := encodeResizeRecord(7, 9)
	got, err := decodeWALRecord(rz)
	if err != nil || got.Rows != 7 || got.Cols != 9 {
		t.Fatalf("resize decode: %+v, %v", got, err)
	}
	if _, err := decodeWALRecord([]byte{99}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := decodeWALRecord(nil); err == nil {
		t.Fatal("empty record accepted")
	}
}
