package tabled

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"pairfn/internal/core"
	"pairfn/internal/obs"
)

// TestServerWireBinaryRoundTrip drives the full binary loop — client
// encode → HTTP → content negotiation → zero-alloc server path → binary
// response → client decode — with a mixed batch, and checks a JSON client
// against the same server sees identical results (negotiation, not
// configuration, selects the codec).
func TestServerWireBinaryRoundTrip(t *testing.T) {
	jc, _, _ := newTestServer(t, "")
	bc := &Client{Base: jc.Base, HTTP: jc.HTTP, Wire: WireBinary}
	ctx := context.Background()

	ops := []Op{
		{Op: "set", X: 1, Y: 2, V: "alpha"},
		{Op: "set", X: 3, Y: 4, V: "beta"},
		{Op: "get", X: 1, Y: 2},
		{Op: "get", X: 9, Y: 9},
		{Op: "resize", Rows: 128, Cols: 64},
		{Op: "dims"},
		{Op: "stats"},
		{Op: "get", X: 100, Y: 1}, // in bounds only after the resize
	}
	res, err := bc.Batch(ctx, ops)
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].OK || !res[1].OK {
		t.Fatalf("sets failed: %+v", res[:2])
	}
	if !res[2].Found || res[2].V != "alpha" {
		t.Fatalf("get: %+v", res[2])
	}
	if res[3].Found {
		t.Fatalf("unset cell reported found: %+v", res[3])
	}
	if res[5].Rows != 128 || res[5].Cols != 64 {
		t.Fatalf("dims: %+v", res[5])
	}
	if res[6].Stats == nil {
		t.Fatalf("stats: %+v", res[6])
	}

	// The JSON client reads exactly what the binary client wrote.
	v, found, err := jc.Get(ctx, 1, 2)
	if err != nil || !found || v != "alpha" {
		t.Fatalf("JSON read-back of binary write: %q %v %v", v, found, err)
	}
	// And vice versa.
	if err := jc.Set(ctx, Cell[string]{X: 5, Y: 5, V: "json-written"}); err != nil {
		t.Fatal(err)
	}
	v, found, err = bc.Get(ctx, 5, 5)
	if err != nil || !found || v != "json-written" {
		t.Fatalf("binary read-back of JSON write: %q %v %v", v, found, err)
	}
}

// TestServerWireBinaryValueOwnership pins the clone-on-set contract: the
// decoded set value aliases a pooled request buffer, so the server MUST
// copy it before storing. Many later requests (which reuse and overwrite
// the same pooled scratch) must not corrupt earlier stored values.
func TestServerWireBinaryValueOwnership(t *testing.T) {
	jc, _, _ := newTestServer(t, "")
	bc := &Client{Base: jc.Base, HTTP: jc.HTTP, Wire: WireBinary}
	ctx := context.Background()

	if err := bc.Set(ctx, Cell[string]{X: 1, Y: 1, V: "must-survive-scratch-reuse"}); err != nil {
		t.Fatal(err)
	}
	// Hammer the pooled scratch with different bytes at the same offsets.
	for i := 0; i < 50; i++ {
		if err := bc.Set(ctx, Cell[string]{X: 2, Y: 2, V: strings.Repeat("x", 30) + fmt.Sprint(i)}); err != nil {
			t.Fatal(err)
		}
	}
	v, found, err := bc.Get(ctx, 1, 1)
	if err != nil || !found || v != "must-survive-scratch-reuse" {
		t.Fatalf("stored value corrupted by scratch reuse: %q %v %v", v, found, err)
	}
}

// TestServerWireBinaryErrors checks the binary arm's error statuses: a
// corrupt frame and an oversized op count are 400s, and a write while
// degraded is a 503 — all as plain-text errors a binary client surfaces.
func TestServerWireBinaryErrors(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg, 8)
	table, err := NewSharded[string](core.SquareShell{}, 8, pagedStore, 64, 64, m)
	if err != nil {
		t.Fatal(err)
	}
	writable := obs.NewFlag(true)
	ts := httptest.NewServer(NewHandler(table, ServerOptions{
		Registry: reg, Metrics: m, Ready: obs.NewFlag(true),
		MaxBatch: 4, Writable: writable,
	}))
	t.Cleanup(ts.Close)

	post := func(body []byte) (*http.Response, error) {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/batch", bytes.NewReader(body))
		req.Header.Set("Content-Type", ContentTypeBinary)
		return ts.Client().Do(req)
	}

	frame, err := AppendBatchRequest(nil, []Op{{Op: "set", X: 1, Y: 1, V: "v"}})
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte(nil), frame...)
	corrupt[len(corrupt)-1] ^= 0xff
	resp, err := post(corrupt)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt frame: status %d, want 400", resp.StatusCode)
	}

	big, err := AppendBatchRequest(nil, []Op{
		{Op: "dims"}, {Op: "dims"}, {Op: "dims"}, {Op: "dims"}, {Op: "dims"},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = post(big)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("over-MaxBatch frame: status %d, want 400", resp.StatusCode)
	}

	writable.Set(false)
	resp, err = post(frame)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded write: status %d, want 503", resp.StatusCode)
	}
	// Reads still pass while degraded.
	getFrame, err := AppendBatchRequest(nil, []Op{{Op: "get", X: 1, Y: 1}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = post(getFrame)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded read: status %d, want 200", resp.StatusCode)
	}
}

// TestServerWireBinaryIdempotentReplay posts the same binary frame twice
// under one Idempotency-Key and checks the second answer is the recorded
// binary response, not a re-execution.
func TestServerWireBinaryIdempotentReplay(t *testing.T) {
	jc, table, _ := newTestServer(t, "")
	frame, err := AppendBatchRequest(nil, []Op{{Op: "set", X: 7, Y: 7, V: "once"}})
	if err != nil {
		t.Fatal(err)
	}
	post := func() *http.Response {
		req, _ := http.NewRequest(http.MethodPost, jc.Base+"/v1/batch", bytes.NewReader(frame))
		req.Header.Set("Content-Type", ContentTypeBinary)
		req.Header.Set(IdempotencyKeyHeader, "wire-idem-1")
		resp, err := jc.HTTP.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	r1 := post()
	b1 := readAll(t, r1)
	r2 := post()
	b2 := readAll(t, r2)
	if r2.Header.Get("Idempotent-Replay") != "true" {
		t.Fatal("second post not served from the idempotency cache")
	}
	if r2.Header.Get("Content-Type") != ContentTypeBinary {
		t.Fatalf("replay content type %q, want %q", r2.Header.Get("Content-Type"), ContentTypeBinary)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("replayed binary body differs from the original")
	}
	if n := table.Len(); n != 1 {
		t.Fatalf("table has %d cells after replayed set, want 1", n)
	}
}

func readAll(t *testing.T, r *http.Response) []byte {
	t.Helper()
	defer r.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestServerBatchPathAllocFree is the server-side allocation guardrail:
// steady-state binary get batches execute end to end — decode, plan
// (batched PF encode), sharded read, response encode — with ZERO
// allocations, and set batches with exactly one allocation per op (the
// clone of the stored value out of the pooled request buffer).
func TestServerBatchPathAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are meaningless under -race: sync.Pool randomly drops puts")
	}
	table, err := NewSharded[string](core.SquareShell{}, 8, pagedStore, 256, 256, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := &server{b: table, opt: ServerOptions{MaxBatch: DefaultMaxBatch}}

	const n = 128
	getOps := make([]Op, n)
	setOps := make([]Op, n)
	for i := range getOps {
		getOps[i] = Op{Op: "get", X: int64(i%13 + 1), Y: int64(i%17 + 1)}
		setOps[i] = Op{Op: "set", X: int64(i%13 + 1), Y: int64(i%17 + 1), V: "steady-state-value"}
	}
	getFrame, err := AppendBatchRequest(nil, getOps)
	if err != nil {
		t.Fatal(err)
	}
	setFrame, err := AppendBatchRequest(nil, setOps)
	if err != nil {
		t.Fatal(err)
	}
	scr := new(wireScratch)
	run := func(frame []byte) {
		out, status, msg := srv.batchBinary(frame, scr)
		if status != http.StatusOK {
			t.Fatalf("batchBinary: %d %s", status, msg)
		}
		if len(out) == 0 {
			t.Fatal("empty response frame")
		}
	}
	run(getFrame) // warm the scratch and the plan pool
	run(setFrame)

	if a := testing.AllocsPerRun(200, func() { run(getFrame) }); a != 0 {
		t.Errorf("binary get batch: %.2f allocs per request, want 0", a)
	}
	// Sets clone each stored value out of the pooled body: exactly 1/op.
	if a := testing.AllocsPerRun(200, func() { run(setFrame) }); a > n {
		t.Errorf("binary set batch: %.2f allocs per request, want ≤ %d (1 clone per op)", a, n)
	}
}

// TestShardedBatchIntoAllocFree pins the backend half on its own: planning
// (batched address encode + counting sort) and the shard loops reuse
// pooled scratch, so GetBatchInto/SetBatchInto allocate nothing.
func TestShardedBatchIntoAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are meaningless under -race: sync.Pool randomly drops puts")
	}
	table, err := NewSharded[string](core.Diagonal{}, 8, pagedStore, 256, 256, nil)
	if err != nil {
		t.Fatal(err)
	}
	const n = 128
	cells := make([]Cell[string], n)
	keys := make([]Pos, n)
	for i := range cells {
		cells[i] = Cell[string]{X: int64(i%31 + 1), Y: int64(i%29 + 1), V: "v"}
		keys[i] = Pos{X: cells[i].X, Y: cells[i].Y}
	}
	errs := make([]error, n)
	res := make([]GetResult[string], n)
	table.SetBatchInto(cells, errs)
	if a := testing.AllocsPerRun(200, func() { table.SetBatchInto(cells, errs) }); a != 0 {
		t.Errorf("SetBatchInto: %.2f allocs per batch, want 0", a)
	}
	if a := testing.AllocsPerRun(200, func() { table.GetBatchInto(keys, res) }); a != 0 {
		t.Errorf("GetBatchInto: %.2f allocs per batch, want 0", a)
	}
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("cell %d: %v", i, errs[i])
		}
		if !res[i].OK || res[i].V != "v" {
			t.Fatalf("get %d: %+v", i, res[i])
		}
	}
}

// TestClientConnectionReuse is the dial-count regression test for the
// pooled default transport: N workers hammering one server must reuse
// their connections between batches instead of re-dialing. Under
// http.DefaultTransport's 2-idle-conns-per-host default, 8 workers × 40
// rounds dial hundreds of times; the pinned pool stays at ≲ one dial per
// worker.
func TestClientConnectionReuse(t *testing.T) {
	table, err := NewSharded[string](core.SquareShell{}, 8, pagedStore, 64, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewUnstartedServer(NewHandler(table, ServerOptions{Ready: obs.NewFlag(true)}))
	var dials atomic.Int64
	// ConnState must be installed before Start: the serve goroutine reads it.
	ts.Config.ConnState = func(c net.Conn, st http.ConnState) {
		if st == http.StateNew {
			dials.Add(1)
		}
	}
	ts.Start()
	t.Cleanup(ts.Close)

	const workers, rounds = 8, 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Deliberately NO custom HTTP client: this exercises the shared
			// pooled DefaultTransport, the code path under regression.
			c := &Client{Base: ts.URL, Wire: WireBinary}
			for r := 0; r < rounds; r++ {
				if err := c.Set(context.Background(),
					Cell[string]{X: int64(w + 1), Y: int64(r%32 + 1), V: "reuse"}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if d := dials.Load(); d > 3*workers {
		t.Errorf("%d dials for %d workers × %d batches: connections are churning, want ≤ %d",
			d, workers, rounds, 3*workers)
	}
	DefaultTransport.CloseIdleConnections()
}
