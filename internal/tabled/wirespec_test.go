package tabled

import (
	"bytes"
	"encoding/hex"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestWireSpecExamples pins docs/WIRE.md to the codec: every
// ```wire-example``` block in the spec names a canonical batch, and the
// hex bytes printed there must be EXACTLY what the encoder produces (and
// must decode back). If the codec changes framing, this fails until the
// spec's examples are regenerated — the spec cannot drift silently.
func TestWireSpecExamples(t *testing.T) {
	// The canonical example batches, one per named block in the spec.
	requests := map[string][]Op{
		"request-set-get": {
			{Op: "set", X: 2, Y: 3, V: "hi"},
			{Op: "get", X: 2, Y: 3},
		},
		"request-resize-dims": {
			{Op: "resize", Rows: 200, Cols: 100},
			{Op: "dims"},
		},
	}
	responses := map[string][]OpResult{
		"response-set-get": {
			{OK: true},
			{OK: true, Found: true, V: "hi"},
		},
		"response-resize-dims": {
			{OK: true},
			{OK: true, Rows: 200, Cols: 100},
		},
		"response-error": {
			{Err: "out of bounds"},
		},
	}

	examples := parseWireExamples(t, filepath.Join("..", "..", "docs", "WIRE.md"))
	if len(examples) != len(requests)+len(responses) {
		t.Errorf("spec has %d wire-example blocks, test knows %d — add the new example here",
			len(examples), len(requests)+len(responses))
	}

	for name, specBytes := range examples {
		name, specBytes := name, specBytes
		t.Run(name, func(t *testing.T) {
			var got []byte
			var err error
			switch {
			case requests[name] != nil:
				got, err = AppendBatchRequest(nil, requests[name])
			case responses[name] != nil:
				got, err = AppendBatchResponse(nil, responses[name])
			default:
				t.Fatalf("spec block %q has no canonical batch in this test", name)
			}
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, specBytes) {
				t.Fatalf("spec bytes diverge from encoder:\n spec:    % x\n encoder: % x", specBytes, got)
			}
			// And the spec bytes decode back to the canonical batch.
			if ops := requests[name]; ops != nil {
				dec, err := DecodeBatchRequest(specBytes, nil, 0)
				if err != nil {
					t.Fatal(err)
				}
				if len(dec) != len(ops) {
					t.Fatalf("decoded %d ops, want %d", len(dec), len(ops))
				}
				for i := range dec {
					if dec[i] != ops[i] {
						t.Errorf("op %d: %+v, want %+v", i, dec[i], ops[i])
					}
				}
			} else {
				res := responses[name]
				dec, err := DecodeBatchResponse(specBytes, nil, 0)
				if err != nil {
					t.Fatal(err)
				}
				if len(dec) != len(res) {
					t.Fatalf("decoded %d results, want %d", len(dec), len(res))
				}
				for i := range dec {
					if dec[i].OK != res[i].OK || dec[i].Found != res[i].Found ||
						dec[i].V != res[i].V || dec[i].Rows != res[i].Rows ||
						dec[i].Cols != res[i].Cols || dec[i].Err != res[i].Err {
						t.Errorf("result %d: %+v, want %+v", i, dec[i], res[i])
					}
				}
			}
		})
	}
}

// parseWireExamples extracts the named hex frames from the spec's
// ```wire-example``` fenced blocks. Block grammar: a "name: <slug>" line,
// a "hex:" line, then hex byte lines until the closing fence; "#" starts
// a comment, whitespace is insignificant.
func parseWireExamples(t *testing.T, path string) map[string][]byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading the wire spec: %v", err)
	}
	examples := make(map[string][]byte)
	var name string
	var hexBuf strings.Builder
	inBlock, inHex := false, false
	flush := func(line int) {
		if name == "" {
			t.Fatalf("%s: wire-example block ending at line %d has no name:", path, line)
		}
		clean := strings.Join(strings.Fields(hexBuf.String()), "")
		frame, err := hex.DecodeString(clean)
		if err != nil {
			t.Fatalf("%s: block %q: bad hex: %v", path, name, err)
		}
		if len(frame) == 0 {
			t.Fatalf("%s: block %q: empty hex", path, name)
		}
		if _, dup := examples[name]; dup {
			t.Fatalf("%s: duplicate wire-example name %q", path, name)
		}
		examples[name] = frame
		name, inBlock, inHex = "", false, false
		hexBuf.Reset()
	}
	for i, line := range strings.Split(string(data), "\n") {
		trimmed := strings.TrimSpace(line)
		switch {
		case !inBlock && trimmed == "```wire-example":
			inBlock = true
		case inBlock && trimmed == "```":
			flush(i + 1)
		case inBlock:
			if c := strings.Index(trimmed, "#"); c >= 0 {
				trimmed = strings.TrimSpace(trimmed[:c])
			}
			switch {
			case strings.HasPrefix(trimmed, "name:"):
				name = strings.TrimSpace(strings.TrimPrefix(trimmed, "name:"))
			case trimmed == "hex:":
				inHex = true
			case inHex && trimmed != "":
				hexBuf.WriteString(trimmed)
				hexBuf.WriteByte(' ')
			}
		}
	}
	if inBlock {
		t.Fatalf("%s: unterminated wire-example block", path)
	}
	if len(examples) == 0 {
		t.Fatalf("%s: no wire-example blocks found", path)
	}
	return examples
}
