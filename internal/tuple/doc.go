// Package tuple extends pairing functions to arbitrary finite
// dimensionalities: the paper's observation (§1.1) that PFs let one "slip
// gracefully … by iteration, among worldviews of arbitrary finite
// dimensionalities". A k-tuple code is the bijection N^k ↔ N obtained by
// folding a 2-D pairing function right to left:
//
//	code(x₁, …, x_k) = F(x₁, F(x₂, … F(x_{k−1}, x_k)…)).
//
// Any core.PF can serve as the underlying F; different PFs trade spread for
// computation cost exactly as in two dimensions. Mixed allows a different
// PF at each fold level.
//
// # Overflow and concurrency
//
// Encode propagates the underlying PF's ErrOverflow from any fold level —
// iterated pairing reaches int64 limits quickly (diagonal folding of
// k-tuples grows doubly exponentially in k), and the error tells the
// caller exactly that, with no wrapped values. Code and Mixed are
// immutable after construction and safe for concurrent use whenever their
// underlying PFs are (all core PFs qualify).
package tuple
