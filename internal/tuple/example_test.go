package tuple_test

import (
	"fmt"

	"pairfn/internal/core"
	"pairfn/internal/tuple"
)

func ExampleCode() {
	// "By iteration, among worldviews of arbitrary finite
	// dimensionalities" (§1.1): a 3-D code from a 2-D PF.
	c := tuple.MustNew(core.Diagonal{}, 3)
	z, _ := c.Encode(2, 3, 4)
	xs, _ := c.Decode(z)
	fmt.Println(xs)
	// Output: [2 3 4]
}

func ExampleNewMixed() {
	// A different PF per fold level.
	m, _ := tuple.NewMixed(core.Hyperbolic{}, core.SquareShell{})
	z, _ := m.Encode(1, 2, 3)
	xs, _ := m.Decode(z)
	fmt.Println(xs)
	// Output: [1 2 3]
}
