package tuple

import (
	"errors"
	"fmt"

	"pairfn/internal/core"
)

// ErrArity reports a tuple whose length does not match the code's arity.
var ErrArity = errors.New("tuple: wrong tuple length")

// Code is a bijection N^k ↔ N built by iterating a pairing function.
type Code struct {
	f core.PF
	k int
}

// New returns a k-dimensional tuple code over the pairing function f.
// k must be ≥ 1; k = 1 is the identity and k = 2 is f itself.
func New(f core.PF, k int) (*Code, error) {
	if k < 1 {
		return nil, fmt.Errorf("tuple: arity %d < 1", k)
	}
	return &Code{f: f, k: k}, nil
}

// MustNew is New with a panic on error.
func MustNew(f core.PF, k int) *Code {
	c, err := New(f, k)
	if err != nil {
		panic(err)
	}
	return c
}

// Arity returns k.
func (c *Code) Arity() int { return c.k }

// PF returns the underlying pairing function.
func (c *Code) PF() core.PF { return c.f }

// Name returns an identifier for tables and benchmarks.
func (c *Code) Name() string { return fmt.Sprintf("tuple-%d(%s)", c.k, c.f.Name()) }

// Encode maps the k-tuple xs (each coordinate ≥ 1) to its code.
func (c *Code) Encode(xs ...int64) (int64, error) {
	if len(xs) != c.k {
		return 0, fmt.Errorf("%w: got %d, want %d", ErrArity, len(xs), c.k)
	}
	for i, x := range xs {
		if x < 1 {
			return 0, fmt.Errorf("tuple: coordinate %d is %d (must be ≥ 1)", i+1, x)
		}
	}
	z := xs[c.k-1]
	for i := c.k - 2; i >= 0; i-- {
		var err error
		z, err = c.f.Encode(xs[i], z)
		if err != nil {
			return 0, err
		}
	}
	return z, nil
}

// Decode inverts Encode, returning the k coordinates.
func (c *Code) Decode(z int64) ([]int64, error) {
	if z < 1 {
		return nil, fmt.Errorf("tuple: code %d < 1", z)
	}
	xs := make([]int64, c.k)
	for i := 0; i < c.k-1; i++ {
		x, rest, err := c.f.Decode(z)
		if err != nil {
			return nil, err
		}
		xs[i] = x
		z = rest
	}
	xs[c.k-1] = z
	return xs, nil
}

// Mixed is a k-tuple code that may use a different pairing function at
// each fold level: code = F₁(x₁, F₂(x₂, … F_{k−1}(x_{k−1}, x_k)…)). The
// paper's spread analysis composes: inner levels see the (already large)
// codes of the levels below, so putting the most compact PF (ℋ) at the
// *outer* levels matters most — TestMixedCompactness quantifies this.
type Mixed struct {
	fs []core.PF // fs[i] pairs coordinate i+1 with the code of the rest
}

// NewMixed returns a (len(fs)+1)-dimensional code folding with fs.
func NewMixed(fs ...core.PF) (*Mixed, error) {
	if len(fs) < 1 {
		return nil, fmt.Errorf("tuple: NewMixed needs at least one PF")
	}
	return &Mixed{fs: append([]core.PF(nil), fs...)}, nil
}

// Arity returns the tuple length len(fs)+1.
func (m *Mixed) Arity() int { return len(m.fs) + 1 }

// Encode maps the tuple to its code.
func (m *Mixed) Encode(xs ...int64) (int64, error) {
	if len(xs) != m.Arity() {
		return 0, fmt.Errorf("%w: got %d, want %d", ErrArity, len(xs), m.Arity())
	}
	for i, x := range xs {
		if x < 1 {
			return 0, fmt.Errorf("tuple: coordinate %d is %d (must be ≥ 1)", i+1, x)
		}
	}
	z := xs[len(xs)-1]
	for i := len(m.fs) - 1; i >= 0; i-- {
		var err error
		z, err = m.fs[i].Encode(xs[i], z)
		if err != nil {
			return 0, err
		}
	}
	return z, nil
}

// Decode inverts Encode.
func (m *Mixed) Decode(z int64) ([]int64, error) {
	if z < 1 {
		return nil, fmt.Errorf("tuple: code %d < 1", z)
	}
	xs := make([]int64, m.Arity())
	for i, f := range m.fs {
		x, rest, err := f.Decode(z)
		if err != nil {
			return nil, err
		}
		xs[i] = x
		z = rest
	}
	xs[len(xs)-1] = z
	return xs, nil
}
