package tuple

import (
	"testing"
	"testing/quick"

	"pairfn/internal/core"
)

func TestRoundTrip3D(t *testing.T) {
	c := MustNew(core.Diagonal{}, 3)
	for x := int64(1); x <= 12; x++ {
		for y := int64(1); y <= 12; y++ {
			for z := int64(1); z <= 12; z++ {
				code, err := c.Encode(x, y, z)
				if err != nil {
					t.Fatalf("Encode(%d, %d, %d): %v", x, y, z, err)
				}
				got, err := c.Decode(code)
				if err != nil {
					t.Fatal(err)
				}
				if got[0] != x || got[1] != y || got[2] != z {
					t.Fatalf("round trip (%d,%d,%d) → %d → %v", x, y, z, code, got)
				}
			}
		}
	}
}

func TestInjective3D(t *testing.T) {
	c := MustNew(core.SquareShell{}, 3)
	seen := make(map[int64][3]int64)
	for x := int64(1); x <= 10; x++ {
		for y := int64(1); y <= 10; y++ {
			for z := int64(1); z <= 10; z++ {
				code, err := c.Encode(x, y, z)
				if err != nil {
					t.Fatal(err)
				}
				if p, dup := seen[code]; dup {
					t.Fatalf("collision %v and (%d,%d,%d) → %d", p, x, y, z, code)
				}
				seen[code] = [3]int64{x, y, z}
			}
		}
	}
}

// TestSurjectivePrefix3D checks every small code decodes and re-encodes.
func TestSurjectivePrefix3D(t *testing.T) {
	c := MustNew(core.Diagonal{}, 3)
	for code := int64(1); code <= 2000; code++ {
		xs, err := c.Decode(code)
		if err != nil {
			t.Fatal(err)
		}
		back, err := c.Encode(xs...)
		if err != nil || back != code {
			t.Fatalf("Encode(Decode(%d)) = %d, %v", code, back, err)
		}
	}
}

func TestArity1And2(t *testing.T) {
	one := MustNew(core.Diagonal{}, 1)
	for v := int64(1); v <= 100; v++ {
		code, err := one.Encode(v)
		if err != nil || code != v {
			t.Fatalf("arity-1 Encode(%d) = %d, %v", v, code, err)
		}
	}
	two := MustNew(core.Diagonal{}, 2)
	for x := int64(1); x <= 15; x++ {
		for y := int64(1); y <= 15; y++ {
			a, err := two.Encode(x, y)
			if err != nil {
				t.Fatal(err)
			}
			if b := core.MustEncode(core.Diagonal{}, x, y); a != b {
				t.Fatalf("arity-2 (%d, %d): %d ≠ PF %d", x, y, a, b)
			}
		}
	}
}

func TestTupleErrors(t *testing.T) {
	if _, err := New(core.Diagonal{}, 0); err == nil {
		t.Error("arity 0 should fail")
	}
	c := MustNew(core.Diagonal{}, 3)
	if _, err := c.Encode(1, 2); err == nil {
		t.Error("wrong tuple length should fail")
	}
	if _, err := c.Encode(1, 0, 2); err == nil {
		t.Error("coordinate 0 should fail")
	}
	if _, err := c.Decode(0); err == nil {
		t.Error("Decode(0) should fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew(f, -1) did not panic")
		}
	}()
	MustNew(core.Diagonal{}, -1)
}

func TestQuickRoundTrip4D(t *testing.T) {
	c := MustNew(core.SquareShell{}, 4)
	f := func(a, b, cc, d uint8) bool {
		xs := []int64{int64(a%50) + 1, int64(b%50) + 1, int64(cc%50) + 1, int64(d%50) + 1}
		code, err := c.Encode(xs...)
		if err != nil {
			return false
		}
		got, err := c.Decode(code)
		if err != nil {
			return false
		}
		for i := range xs {
			if got[i] != xs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestHyperbolicTupleCompactness demonstrates why iterating the hyperbolic
// PF matters: the 3-D code of a box with n total positions stays much
// smaller under ℋ than under 𝒟 for flat boxes.
func TestHyperbolicTupleCompactness(t *testing.T) {
	hd := MustNew(core.Hyperbolic{}, 3)
	dd := MustNew(core.Diagonal{}, 3)
	var maxH, maxD int64
	// 1×1×n "needle" of 64 elements, the worst shape for 𝒟.
	for z := int64(1); z <= 64; z++ {
		h, err := hd.Encode(1, 1, z)
		if err != nil {
			t.Fatal(err)
		}
		d, err := dd.Encode(1, 1, z)
		if err != nil {
			t.Fatal(err)
		}
		if h > maxH {
			maxH = h
		}
		if d > maxD {
			maxD = d
		}
	}
	if maxH >= maxD {
		t.Errorf("hyperbolic needle footprint %d should beat diagonal %d", maxH, maxD)
	}
}

func TestMixedRoundTrip(t *testing.T) {
	m, err := NewMixed(core.Hyperbolic{}, core.Diagonal{}, core.SquareShell{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Arity() != 4 {
		t.Fatalf("arity %d", m.Arity())
	}
	for a := int64(1); a <= 6; a++ {
		for b := int64(1); b <= 6; b++ {
			for c := int64(1); c <= 6; c++ {
				for d := int64(1); d <= 6; d++ {
					z, err := m.Encode(a, b, c, d)
					if err != nil {
						t.Fatal(err)
					}
					got, err := m.Decode(z)
					if err != nil {
						t.Fatal(err)
					}
					if got[0] != a || got[1] != b || got[2] != c || got[3] != d {
						t.Fatalf("(%d,%d,%d,%d) → %d → %v", a, b, c, d, z, got)
					}
				}
			}
		}
	}
}

// TestMixedCompactness: for thin 3-D "needles", hyperbolic-at-every-level
// beats mixing in a diagonal at the outer level.
func TestMixedCompactness(t *testing.T) {
	allH, err := NewMixed(core.Hyperbolic{}, core.Hyperbolic{})
	if err != nil {
		t.Fatal(err)
	}
	outerD, err := NewMixed(core.Diagonal{}, core.Hyperbolic{})
	if err != nil {
		t.Fatal(err)
	}
	var maxH, maxD int64
	for z := int64(1); z <= 64; z++ {
		h, err := allH.Encode(1, 1, z)
		if err != nil {
			t.Fatal(err)
		}
		d, err := outerD.Encode(1, 1, z)
		if err != nil {
			t.Fatal(err)
		}
		if h > maxH {
			maxH = h
		}
		if d > maxD {
			maxD = d
		}
	}
	if maxH >= maxD {
		t.Errorf("all-hyperbolic footprint %d should beat outer-diagonal %d", maxH, maxD)
	}
}

func TestMixedErrors(t *testing.T) {
	if _, err := NewMixed(); err == nil {
		t.Error("empty NewMixed should fail")
	}
	m, _ := NewMixed(core.Diagonal{})
	if _, err := m.Encode(1, 2, 3); err == nil {
		t.Error("wrong arity should fail")
	}
	if _, err := m.Encode(0, 1); err == nil {
		t.Error("coordinate 0 should fail")
	}
	if _, err := m.Decode(0); err == nil {
		t.Error("code 0 should fail")
	}
}
