// Package walog is the shared write-ahead-log core: the generic
// append → fsync → replay → checkpoint loop that every durable service in
// the repo runs, factored out of the tabled WAL so the WBC coordinator
// journal (and any future log) reuses one proven implementation.
//
// A Log is an append-only file of CRC32-framed records (the
// extarray/framelog frame format). The durability contract is the one PR 4
// established for tabled and §4's accountability story demands for WBC:
// a record handed back as durable survives kill -9; a crash loses at most
// a suffix of records that were never acknowledged, and boot-time replay
// truncates a torn final frame instead of failing.
//
// Two-phase appends split ordering from durability: Enqueue frames the
// record into the file under the log's own lock (so callers that must keep
// log order identical to state-mutation order — the WBC coordinator, whose
// ops do not commute — enqueue while still holding their state lock), and
// Ticket.Wait blocks until the record is fsynced, possibly sharing one
// group-commit sync with concurrent appends. Because frames are laid out
// in enqueue order and fsync covers the file prefix, durability is
// prefix-closed: if record n survives a crash, so does every record before
// it — which is what makes sequence-gated replay (skip records at or below
// the checkpoint's op counter) idempotent and torn-cut safe.
//
// Any append or sync failure is sticky: the log can no longer attest
// durability, so every later append returns the original error and the
// owning server is expected to degrade to read-only rather than die.
package walog
