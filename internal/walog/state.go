package walog

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"pairfn/internal/extarray"
)

// This file is the durable identity of the record stream: which sequence
// the log's first on-disk record carries (base survives restarts, so a
// checkpointed log does not renumber from zero), and which primary epoch
// each sequence range belongs to. Both live in a tiny JSON sidecar next to
// the log (Options.StatePath), written atomically so it is either the old
// state or the new one, never torn.
//
// Epochs are the replication fencing primitive. Every promotion bumps the
// epoch and records the sequence it took effect at (an EpochMark); frames
// served to followers are tagged with the epoch of the records they carry,
// and a chunk never spans a mark. From the marks alone a source can answer
// "where does history after epoch E begin?" (EpochBarrier) — a follower
// still below that barrier after a promotion elsewhere holds only shared
// history and may keep tailing; one past it holds a fork and must reseed.
//
// The sidecar interacts with the caller's snapshot through one boot rule:
// if the snapshot the caller just loaded embeds a replication cut beyond
// the sidecar's base (Options.SnapshotSeq > base), the log's contents
// predate the snapshot and are discarded before replay, and the base
// becomes the snapshot cut. That single rule makes every checkpoint and
// reseed crash window converge: snapshot-then-truncate-then-persist can
// die between any two steps and the next boot still lands on exactly the
// snapshot state plus the surviving suffix.

// An EpochMark records that records [Start, …) were appended under Epoch,
// until the next mark. Marks are strictly increasing in Epoch and
// non-decreasing in Start.
type EpochMark struct {
	Epoch uint64 `json:"epoch"`
	Start uint64 `json:"start"`
}

// StreamState is the durable sidecar persisted at Options.StatePath.
type StreamState struct {
	Base  uint64      `json:"base"`
	Marks []EpochMark `json:"marks,omitempty"`
}

// loadStreamState reads the sidecar; a missing file is the zero state
// (fresh log, or a log predating the sidecar — both start at base 0).
func loadStreamState(path string) (StreamState, error) {
	var st StreamState
	b, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return st, nil
	}
	if err != nil {
		return st, err
	}
	if err := json.Unmarshal(b, &st); err != nil {
		return st, fmt.Errorf("parse %s: %w", path, err)
	}
	return st, nil
}

// persistStateLocked writes the sidecar atomically. Callers hold l.mu. A
// log opened without StatePath (e.g. the wbc journal) persists nothing and
// keeps the pre-sidecar behavior: base restarts at zero.
func (l *Log) persistStateLocked() error {
	if l.statePath == "" {
		return nil
	}
	b, err := json.Marshal(StreamState{Base: l.base, Marks: l.marks})
	if err != nil {
		return fmt.Errorf("%s: encode state: %w", l.name, err)
	}
	return extarray.AtomicWriteFile(l.statePath, func(w io.Writer) error {
		_, err := w.Write(b)
		return err
	})
}

// normalizeMarks enforces the mark invariants on a freshly loaded sidecar:
// epochs strictly increase, starts never decrease, and no mark points past
// the committed horizon (a mark written just before a crash that lost the
// tail is clamped back — the epoch claim survives, its start cannot exceed
// what exists). A snapshot carrying a newer epoch than any mark (a reseed
// that died before ResetTo ran) contributes a mark at base.
func normalizeMarks(marks []EpochMark, base, committed, snapEpoch uint64) []EpochMark {
	var (
		out          []EpochMark
		lastE, lastS uint64
	)
	for _, mk := range marks {
		if mk.Epoch <= lastE {
			continue
		}
		if mk.Start > committed {
			mk.Start = committed
		}
		if mk.Start < lastS {
			mk.Start = lastS
		}
		out = append(out, mk)
		lastE, lastS = mk.Epoch, mk.Start
	}
	if snapEpoch > lastE {
		s := base
		if s < lastS {
			s = lastS
		}
		out = append(out, EpochMark{Epoch: snapEpoch, Start: s})
	}
	return out
}

// epochLocked is the current epoch: the last mark's, or 0 for a log that
// has never seen a promotion.
func (l *Log) epochLocked() uint64 {
	if n := len(l.marks); n > 0 {
		return l.marks[n-1].Epoch
	}
	return 0
}

// Epoch returns the log's current epoch.
func (l *Log) Epoch() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.epochLocked()
}

// EpochAt returns the epoch that record seq was (or will be) appended
// under: the last mark at or before seq.
func (l *Log) EpochAt(seq uint64) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := len(l.marks) - 1; i >= 0; i-- {
		if l.marks[i].Start <= seq {
			return l.marks[i].Epoch
		}
	}
	return 0
}

// EpochBarrier reports where history newer than epoch `since` begins: the
// start of the earliest mark with a larger epoch. ok is false when no such
// mark exists. A puller at epoch `since` asking for records at or below
// the barrier is still inside shared history; one asking past it claims
// records from a fork this log fenced off.
func (l *Log) EpochBarrier(since uint64) (start uint64, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, mk := range l.marks {
		if mk.Epoch > since {
			return mk.Start, true
		}
	}
	return 0, false
}

// SetEpoch durably advances the log's epoch to e — the promotion path. The
// mark lands at the committed horizon after a final sync, so everything
// appended before the promotion stays in the old epoch and everything
// after is in the new one. e must exceed the current epoch; the sidecar
// write happens before SetEpoch returns, so a promotion acknowledged to an
// operator survives any later crash.
func (l *Log) SetEpoch(e uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return l.failed
	}
	if l.closed {
		return ErrClosed
	}
	cur := l.epochLocked()
	if e <= cur {
		return fmt.Errorf("%s: epoch %d does not advance current epoch %d", l.name, e, cur)
	}
	if err := l.syncLocked(); err != nil {
		return err
	}
	l.marks = append(l.marks, EpochMark{Epoch: e, Start: l.committed})
	if err := l.persistStateLocked(); err != nil {
		l.marks = l.marks[:len(l.marks)-1]
		return fmt.Errorf("%s: persist epoch: %w", l.name, err)
	}
	return nil
}

// ObserveEpoch mirrors a source's epoch boundary onto this log — the
// follower path: before applying the first chunk of a newer epoch, the
// follower records that its own records from `start` on belong to e. An
// equal epoch is a no-op; a smaller one is a regression and an error.
func (l *Log) ObserveEpoch(e, start uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return l.failed
	}
	if l.closed {
		return ErrClosed
	}
	cur := l.epochLocked()
	if e == cur {
		return nil
	}
	if e < cur {
		return fmt.Errorf("%s: observed epoch %d below current epoch %d", l.name, e, cur)
	}
	if n := len(l.marks); n > 0 && start < l.marks[n-1].Start {
		return fmt.Errorf("%s: epoch %d start %d precedes prior mark at %d", l.name, e, start, l.marks[n-1].Start)
	}
	if next := l.base + uint64(len(l.offs)); start > next {
		return fmt.Errorf("%s: epoch %d start %d beyond next append %d", l.name, e, start, next)
	}
	l.marks = append(l.marks, EpochMark{Epoch: e, Start: start})
	if err := l.persistStateLocked(); err != nil {
		l.marks = l.marks[:len(l.marks)-1]
		return fmt.Errorf("%s: persist epoch: %w", l.name, err)
	}
	return nil
}

// Cut syncs the log and hands save the durable horizon and its epoch while
// appends are blocked — the snapshot-serving primitive. Unlike Checkpoint
// it does not truncate anything: a caller that also holds its own state
// lock inside save gets a snapshot that is exactly the effect of records
// [0, cut), with nothing in flight. The sync first is what makes the cut
// honest: without it the snapshot could embed records not yet durable
// here, and a crash would silently rewind history under a follower that
// already installed them.
func (l *Log) Cut(save func(cut, epoch uint64) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return l.failed
	}
	if l.closed {
		return ErrClosed
	}
	if err := l.syncLocked(); err != nil {
		return err
	}
	return save(l.committed, l.epochLocked())
}

// ResetTo discards every record and reseats the log at seq/epoch — the
// reseed install path, called after the caller has durably written a
// snapshot whose embedded cut is seq. The file is truncated, the sequence
// line collapses to [seq, seq), and the sidecar is rewritten, so the next
// append takes sequence seq under epoch.
func (l *Log) ResetTo(seq, epoch uint64) error {
	l.readMu.Lock()
	defer l.readMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return l.failed
	}
	if l.closed {
		return ErrClosed
	}
	if err := l.f.Truncate(0); err != nil {
		l.failed = fmt.Errorf("%s: reset truncate: %w", l.name, err)
		l.wakeCommittedLocked()
		return l.failed
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		l.failed = fmt.Errorf("%s: reset seek: %w", l.name, err)
		l.wakeCommittedLocked()
		return l.failed
	}
	l.size = 0
	l.synced = 0
	l.base = seq
	l.offs = l.offs[:0]
	if epoch > 0 {
		l.marks = []EpochMark{{Epoch: epoch, Start: seq}}
	} else {
		l.marks = nil
	}
	if l.committed != seq {
		l.committed = seq
	}
	l.wakeCommittedLocked()
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.persistStateLocked(); err != nil {
		l.failed = fmt.Errorf("%s: reset persist: %w", l.name, err)
		return l.failed
	}
	if l.obs != nil {
		l.obs.LogSize(0)
	}
	return nil
}
