package walog_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pairfn/internal/walog"
)

// stateOpts returns Options with a sidecar next to the log, the
// configuration every replicated tabled WAL now runs with.
func stateOpts(path string) walog.Options {
	return walog.Options{StatePath: path + ".state"}
}

// TestBaseSurvivesCheckpointRestart is the renumbering bug the sidecar
// exists to fix: before it, a checkpointed log re-opened at base 0 and a
// follower tailing by sequence silently got the wrong records.
func TestBaseSurvivesCheckpointRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	l, _, _ := collect(t, path, stateOpts(path))
	for i := 0; i < 5; i++ {
		if err := l.Append([]byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	var cut uint64
	if err := l.CheckpointSeq(func(c uint64) error { cut = c; return nil }); err != nil {
		t.Fatalf("CheckpointSeq: %v", err)
	}
	if cut != 5 {
		t.Fatalf("cut = %d, want 5", cut)
	}
	if err := l.Append([]byte("r5")); err != nil {
		t.Fatalf("Append after checkpoint: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, got, n := collect(t, path, stateOpts(path))
	defer l2.Close()
	if n != 1 || string(got[0]) != "r5" {
		t.Fatalf("replayed %d records %q, want just r5", n, got)
	}
	base, next := l2.SeqState()
	if base != 5 || next != 6 {
		t.Fatalf("SeqState = [%d, %d), want [5, 6)", base, next)
	}
}

// TestSnapshotSeqDiscardsStaleLog exercises the boot rule: a snapshot cut
// beyond the sidecar base means the log predates the snapshot (a
// checkpoint died between the snapshot write and the truncate) and must be
// discarded, not replayed.
func TestSnapshotSeqDiscardsStaleLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	l, _, _ := collect(t, path, stateOpts(path))
	for i := 0; i < 4; i++ {
		if err := l.Append([]byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Boot as if a snapshot embedding cut 4 was written but the log was
	// never truncated: nothing replays, the base adopts the cut.
	opt := stateOpts(path)
	opt.SnapshotSeq = 4
	l2, got, n := collect(t, path, opt)
	if n != 0 || len(got) != 0 {
		t.Fatalf("replayed %d records from a log the snapshot subsumed", n)
	}
	base, next := l2.SeqState()
	if base != 4 || next != 4 {
		t.Fatalf("SeqState = [%d, %d), want [4, 4)", base, next)
	}
	if err := l2.Append([]byte("r4")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// The discard itself was persisted: a plain re-open (snapshot seq
	// unchanged) keeps the adopted base and the one new record.
	l3, got, n := collect(t, path, opt)
	defer l3.Close()
	if n != 1 || string(got[0]) != "r4" {
		t.Fatalf("replayed %d records %q, want just r4", n, got)
	}
	if base, next := l3.SeqState(); base != 4 || next != 5 {
		t.Fatalf("SeqState = [%d, %d), want [4, 5)", base, next)
	}
}

// TestSetEpochDurable covers the promotion path: SetEpoch advances the
// epoch at the committed horizon, survives a restart, and refuses
// regressions.
func TestSetEpochDurable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	l, _, _ := collect(t, path, stateOpts(path))
	if e := l.Epoch(); e != 0 {
		t.Fatalf("fresh epoch = %d", e)
	}
	for i := 0; i < 3; i++ {
		if err := l.Append([]byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.SetEpoch(1); err != nil {
		t.Fatalf("SetEpoch(1): %v", err)
	}
	if err := l.SetEpoch(1); err == nil {
		t.Fatal("SetEpoch(1) twice succeeded")
	}
	if err := l.Append([]byte("r3")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if got := l.EpochAt(2); got != 0 {
		t.Fatalf("EpochAt(2) = %d, want 0 (pre-promotion record)", got)
	}
	if got := l.EpochAt(3); got != 1 {
		t.Fatalf("EpochAt(3) = %d, want 1", got)
	}
	if start, ok := l.EpochBarrier(0); !ok || start != 3 {
		t.Fatalf("EpochBarrier(0) = %d, %v; want 3, true", start, ok)
	}
	if _, ok := l.EpochBarrier(1); ok {
		t.Fatal("EpochBarrier(1) reported a barrier beyond the last epoch")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, _, _ := collect(t, path, stateOpts(path))
	defer l2.Close()
	if e := l2.Epoch(); e != 1 {
		t.Fatalf("epoch after restart = %d, want 1", e)
	}
	if got := l2.EpochAt(2); got != 0 {
		t.Fatalf("EpochAt(2) after restart = %d, want 0", got)
	}
}

// TestTailStopsAtEpochBoundary: a chunk never mixes records from two
// epochs, so the serving side can stamp one epoch per response.
func TestTailStopsAtEpochBoundary(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	l, _, _ := collect(t, path, stateOpts(path))
	defer l.Close()
	for i := 0; i < 3; i++ {
		if err := l.Append([]byte(fmt.Sprintf("old-%d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.SetEpoch(1); err != nil {
		t.Fatalf("SetEpoch: %v", err)
	}
	for i := 0; i < 2; i++ {
		if err := l.Append([]byte(fmt.Sprintf("new-%d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	frames, next, err := l.Tail(0, 1<<20)
	if err != nil {
		t.Fatalf("Tail(0): %v", err)
	}
	if next != 3 {
		t.Fatalf("Tail(0) next = %d, want 3 (epoch boundary)", next)
	}
	var payloads []string
	if _, err := walog.ReadStream(frames, func(p []byte) error {
		payloads = append(payloads, string(p))
		return nil
	}); err != nil {
		t.Fatalf("ReadStream: %v", err)
	}
	if len(payloads) != 3 || !strings.HasPrefix(payloads[0], "old-") {
		t.Fatalf("chunk = %v, want the 3 old-epoch records", payloads)
	}
	if _, next, err = l.Tail(3, 1<<20); err != nil || next != 5 {
		t.Fatalf("Tail(3) next = %d err = %v, want 5", next, err)
	}
}

// TestObserveEpoch covers the follower path: mirroring a source's boundary
// is durable and idempotent, and regressions are refused.
func TestObserveEpoch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	l, _, _ := collect(t, path, stateOpts(path))
	for i := 0; i < 2; i++ {
		if err := l.Append([]byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.ObserveEpoch(3, 2); err != nil {
		t.Fatalf("ObserveEpoch(3, 2): %v", err)
	}
	if err := l.ObserveEpoch(3, 2); err != nil {
		t.Fatalf("ObserveEpoch same epoch again: %v", err)
	}
	if err := l.ObserveEpoch(2, 2); err == nil {
		t.Fatal("ObserveEpoch regression succeeded")
	}
	if err := l.ObserveEpoch(4, 99); err == nil {
		t.Fatal("ObserveEpoch with a start beyond the next append succeeded")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2, _, _ := collect(t, path, stateOpts(path))
	defer l2.Close()
	if e := l2.Epoch(); e != 3 {
		t.Fatalf("epoch after restart = %d, want 3", e)
	}
}

// TestCutSyncsBeforeServing: the cut handed to save is the durable
// horizon covering every prior append, even under a group-commit window
// where appends may not have synced yet.
func TestCutSyncsBeforeServing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	opt := stateOpts(path)
	opt.SyncWindow = 100 * time.Millisecond // group commit: appends are unsynced at first
	l, _, err := walog.Open(path, func([]byte) error { return nil }, opt)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	for i := 0; i < 4; i++ {
		l.Enqueue([]byte(fmt.Sprintf("r%d", i))) // enqueued, not yet durable
	}
	var cut, epoch uint64
	if err := l.Cut(func(c, e uint64) error { cut, epoch = c, e; return nil }); err != nil {
		t.Fatalf("Cut: %v", err)
	}
	if cut != 4 || epoch != 0 {
		t.Fatalf("Cut = (%d, %d), want (4, 0): the cut must cover unsynced appends", cut, epoch)
	}
	if _, next := l.SeqState(); next != 4 {
		t.Fatalf("committed = %d after Cut, want 4", next)
	}
}

// TestResetTo is the reseed install step: the log collapses to [seq, seq)
// under the given epoch, durably.
func TestResetTo(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	l, _, _ := collect(t, path, stateOpts(path))
	for i := 0; i < 6; i++ {
		if err := l.Append([]byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.ResetTo(40, 2); err != nil {
		t.Fatalf("ResetTo: %v", err)
	}
	if base, next := l.SeqState(); base != 40 || next != 40 {
		t.Fatalf("SeqState = [%d, %d), want [40, 40)", base, next)
	}
	if e := l.Epoch(); e != 2 {
		t.Fatalf("epoch = %d, want 2", e)
	}
	if err := l.Append([]byte("post-reset")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, got, n := collect(t, path, stateOpts(path))
	defer l2.Close()
	if n != 1 || string(got[0]) != "post-reset" {
		t.Fatalf("replayed %d records %q, want just post-reset", n, got)
	}
	if base, _ := l2.SeqState(); base != 40 {
		t.Fatalf("base after restart = %d, want 40", base)
	}
	if e := l2.Epoch(); e != 2 {
		t.Fatalf("epoch after restart = %d, want 2", e)
	}
	if got := l2.EpochAt(40); got != 2 {
		t.Fatalf("EpochAt(40) = %d, want 2", got)
	}
}

// TestSnapshotEpochAdopted: a reseed that wrote the snapshot but died
// before ResetTo still boots into the snapshot's epoch (via
// SnapshotSeq+SnapshotEpoch), so the follower never pulls under a stale
// epoch after the crash.
func TestSnapshotEpochAdopted(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	l, _, _ := collect(t, path, stateOpts(path))
	if err := l.Append([]byte("pre")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	opt := stateOpts(path)
	opt.SnapshotSeq = 10
	opt.SnapshotEpoch = 5
	l2, _, n := collect(t, path, opt)
	defer l2.Close()
	if n != 0 {
		t.Fatalf("replayed %d records past a newer snapshot", n)
	}
	if base, _ := l2.SeqState(); base != 10 {
		t.Fatalf("base = %d, want 10", base)
	}
	if e := l2.Epoch(); e != 5 {
		t.Fatalf("epoch = %d, want 5", e)
	}
}

// TestStateSidecarAbsentKeepsLegacyBehavior: without StatePath nothing is
// written next to the log and base restarts at zero (the wbc journal's
// contract).
func TestStateSidecarAbsentKeepsLegacyBehavior(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	l, _, _ := collect(t, path, walog.Options{})
	if err := l.Append([]byte("r0")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Checkpoint(func() error { return nil }); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := os.Stat(path + ".state"); !os.IsNotExist(err) {
		t.Fatalf("sidecar exists without StatePath (err=%v)", err)
	}
	l2, _, _ := collect(t, path, walog.Options{})
	defer l2.Close()
	if base, _ := l2.SeqState(); base != 0 {
		t.Fatalf("legacy base = %d, want 0", base)
	}
}
