package walog

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"

	"pairfn/internal/extarray"
)

// This file is the replication surface of the log: a primary serves its
// committed (durable) record suffix to followers as raw CRC-framed bytes,
// and a follower ingests them through the same frame reader the boot
// replay uses. Records are numbered by a monotone sequence that survives
// checkpoints: the log file holds records [base, base+len(offs)), of
// which [base, committed) are durable. Only committed records are ever
// served — a frame a follower applies is by construction one the primary
// acknowledged (or will acknowledge: fsynced, pre-ack).
//
// Divergence is detected from the sequence line alone:
//
//   - a follower asking below base hit a checkpoint cut on the primary —
//     the records it needs now live only in the primary's snapshot
//     (ErrSeqGap; the follower must resync from a snapshot, or the
//     operator rebuilds it);
//   - a follower asking past committed claims records the primary never
//     durably wrote — the primary lost its log (or was swapped), and the
//     follower must not trust it (ErrSeqAhead).
//
// Both are permanent conditions for the puller, never retried blindly.

// ErrSeqGap reports a Tail request below the log's base sequence: the
// requested records were checkpointed into a snapshot and are no longer
// in the log.
var ErrSeqGap = errors.New("walog: sequence below log base (checkpointed; resync required)")

// ErrSeqAhead reports a Tail request past the committed horizon by more
// than the long-poll allowance: the requester knows records this log
// never durably wrote, so the two histories have diverged.
var ErrSeqAhead = errors.New("walog: sequence ahead of committed horizon (diverged histories)")

// SeqState reports the log's sequence line: records [base, next) exist
// durably — base is the first record still in the file (earlier ones were
// checkpointed into a snapshot), next is the sequence the next committed
// record will take.
func (l *Log) SeqState() (base, next uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base, l.committed
}

// WaitCommitted blocks until the committed horizon reaches seq (i.e. at
// least seq records are durable), ctx ends, or the log fails or closes.
// It is the long-poll primitive: a frames endpoint waits here briefly
// before answering "nothing new" so followers track the primary at
// round-trip latency instead of poll-interval latency.
func (l *Log) WaitCommitted(ctx context.Context, seq uint64) error {
	for {
		l.mu.Lock()
		switch {
		case l.committed >= seq:
			l.mu.Unlock()
			return nil
		case l.failed != nil:
			err := l.failed
			l.mu.Unlock()
			return err
		case l.closed:
			l.mu.Unlock()
			return ErrClosed
		}
		gen := l.commitGen
		l.mu.Unlock()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-gen:
		}
	}
}

// Tail returns the committed records [from, n) as raw CRC-framed bytes —
// exactly the on-disk representation, so serving them is a bounded file
// read and ingesting them reuses the frame reader's CRC/torn-tail
// machinery. n ≤ committed is chosen so the chunk stays within maxBytes
// (at least one record is returned when any is committed, so a single
// oversized record still ships). next is the sequence to ask for on the
// following call; next == from means nothing new was committed.
//
// Errors: ErrSeqGap when from < base (checkpointed away), ErrSeqAhead
// when from > committed (diverged), and real read failures.
func (l *Log) Tail(from uint64, maxBytes int) (frames []byte, next uint64, err error) {
	if maxBytes <= 0 {
		maxBytes = 1 << 20
	}
	// Lock order: readMu before mu (Checkpoint matches). Holding the read
	// side across the file read keeps the committed byte region immutable
	// without stalling appends.
	l.readMu.RLock()
	defer l.readMu.RUnlock()

	l.mu.Lock()
	base, committed := l.base, l.committed
	switch {
	case from < base:
		l.mu.Unlock()
		return nil, from, fmt.Errorf("%w: asked %d, log base %d", ErrSeqGap, from, base)
	case from > committed:
		l.mu.Unlock()
		return nil, from, fmt.Errorf("%w: asked %d, committed %d", ErrSeqAhead, from, committed)
	case from == committed:
		l.mu.Unlock()
		return nil, from, nil
	}
	// A chunk never spans an epoch mark: every record it carries belongs
	// to one epoch (EpochAt(from)), so the server can tag the response
	// with a single epoch and a follower observes boundaries exactly at
	// chunk starts. limit ≥ from+1 always (marks strictly beyond from),
	// so progress is never stalled by a boundary.
	limit := committed
	for _, mk := range l.marks {
		if mk.Start > from && mk.Start < limit {
			limit = mk.Start
		}
	}
	start := l.offs[from-base]
	next = from
	end := start
	for next < limit {
		var recEnd int64
		if k := next - base + 1; k < uint64(len(l.offs)) {
			recEnd = l.offs[k]
		} else {
			recEnd = l.synced
		}
		if next > from && recEnd-start > int64(maxBytes) {
			break
		}
		end, next = recEnd, next+1
	}
	l.mu.Unlock()

	// Read the region from a private handle: the append handle's position
	// belongs to the writer, and replay-side reads never go through the
	// fault-injection wrapper.
	rf, err := os.Open(l.path)
	if err != nil {
		return nil, from, fmt.Errorf("%s: tail open: %w", l.name, err)
	}
	defer rf.Close()
	buf := make([]byte, end-start)
	if _, err := rf.ReadAt(buf, start); err != nil && err != io.EOF {
		return nil, from, fmt.Errorf("%s: tail read [%d, %d): %w", l.name, start, end, err)
	}
	return buf, next, nil
}

// ReadStream parses a Tail chunk (or any concatenation of frames),
// invoking fn once per record in order. Unlike a log file, a byte stream
// between processes has no legitimate torn tail: truncation or corruption
// anywhere is an error, and fn is never called past it. It returns the
// number of records delivered to fn, which is also safe to add to the
// follower's applied sequence when err is nil.
func ReadStream(frames []byte, fn func(payload []byte) error) (n int, err error) {
	r := byteReader{b: frames}
	valid, torn, err := extarray.ReadFrames(&r, func(payload []byte) error {
		if err := fn(payload); err != nil {
			return err
		}
		n++
		return nil
	})
	if err != nil {
		return n, err
	}
	if torn || valid != int64(len(frames)) {
		return n, fmt.Errorf("walog: truncated or corrupt frame stream at byte %d of %d", valid, len(frames))
	}
	return n, nil
}

// byteReader is a minimal io.Reader over a byte slice (bytes.NewReader
// would also do; this avoids the import for one method).
type byteReader struct {
	b   []byte
	off int
}

func (r *byteReader) Read(p []byte) (int, error) {
	if r.off >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.off:])
	r.off += n
	return n, nil
}
