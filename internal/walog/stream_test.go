package walog_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"pairfn/internal/walog"
)

// pullAll drives one follower catch-up loop: Tail from the follower's
// position in maxBytes chunks, ingesting every record into the follower
// log, until the primary has nothing new. Returns the records pulled.
func pullAll(t *testing.T, primary, follower *walog.Log, maxBytes int) int {
	t.Helper()
	total := 0
	for {
		_, from := follower.SeqState()
		frames, next, err := primary.Tail(from, maxBytes)
		if err != nil {
			t.Fatalf("Tail(%d): %v", from, err)
		}
		if next == from {
			return total
		}
		n, err := walog.ReadStream(frames, follower.Append)
		if err != nil {
			t.Fatalf("ReadStream: %v", err)
		}
		if uint64(n) != next-from {
			t.Fatalf("ReadStream delivered %d records, Tail promised %d", n, next-from)
		}
		total += n
	}
}

// TestStreamReplicatesByteIdentical quick-checks the replication
// invariant: a follower built purely from Tail chunks — across random
// record sizes, random chunk limits, and a mid-stream follower restart —
// ends with a WAL byte-identical to the primary's and the same sequence
// line. Byte identity is the strongest form of "replays to the same
// state": both logs replay through the same frame reader.
func TestStreamReplicatesByteIdentical(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			ppath := filepath.Join(dir, "primary")
			fpath := filepath.Join(dir, "follower")
			primary, _, _ := collect(t, ppath, walog.Options{})
			defer primary.Close()
			follower, _, _ := collect(t, fpath, walog.Options{})

			records := 0
			for round := 0; round < 6; round++ {
				// A burst of appends with adversarial sizes: empty, tiny, and
				// multi-KB records all frame and stream identically.
				for i, n := 0, 1+rng.Intn(40); i < n; i++ {
					p := make([]byte, rng.Intn(4096))
					rng.Read(p)
					if err := primary.Append(p); err != nil {
						t.Fatal(err)
					}
					records++
				}
				pullAll(t, primary, follower, 1+rng.Intn(8192))

				if round == 3 {
					// Follower restart mid-stream: its boot replay count IS its
					// replication position, so it resumes with no handshake.
					if err := follower.Close(); err != nil {
						t.Fatal(err)
					}
					var replayed int
					follower, _, replayed = collect(t, fpath, walog.Options{})
					if _, next := follower.SeqState(); uint64(replayed) != next {
						t.Fatalf("restart: replayed %d records but SeqState next = %d", replayed, next)
					}
				}
			}
			if err := follower.Close(); err != nil {
				t.Fatal(err)
			}

			_, pnext := primary.SeqState()
			if pnext != uint64(records) {
				t.Fatalf("primary committed %d, appended %d", pnext, records)
			}
			pb, err := os.ReadFile(ppath)
			if err != nil {
				t.Fatal(err)
			}
			fb, err := os.ReadFile(fpath)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(pb, fb) {
				t.Fatalf("follower file differs from primary: %d vs %d bytes", len(fb), len(pb))
			}
		})
	}
}

// TestTailChunkBounds: maxBytes bounds a chunk except that one oversized
// record still ships alone — a follower with a small budget must never
// deadlock on a big record.
func TestTailChunkBounds(t *testing.T) {
	l, _, _ := collect(t, filepath.Join(t.TempDir(), "log"), walog.Options{})
	defer l.Close()
	big := make([]byte, 10_000)
	for i := 0; i < 3; i++ {
		if err := l.Append(big); err != nil {
			t.Fatal(err)
		}
	}
	frames, next, err := l.Tail(0, 100) // budget far below one record
	if err != nil {
		t.Fatal(err)
	}
	if next != 1 {
		t.Fatalf("oversized-record Tail advanced to %d, want exactly 1", next)
	}
	if len(frames) < len(big) {
		t.Fatalf("oversized-record Tail returned %d bytes", len(frames))
	}
	if _, next, _ = l.Tail(0, 1<<20); next != 3 {
		t.Fatalf("ample-budget Tail advanced to %d, want 3", next)
	}
}

// TestTailSequenceErrors: asking below base (after a checkpoint truncated
// the log) is ErrSeqGap; asking past the committed horizon is ErrSeqAhead.
// Both must be typed — the follower treats them as permanent.
func TestTailSequenceErrors(t *testing.T) {
	l, _, _ := collect(t, filepath.Join(t.TempDir(), "log"), walog.Options{})
	defer l.Close()
	for i := 0; i < 4; i++ {
		if err := l.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := l.Tail(9, 0); !errors.Is(err, walog.ErrSeqAhead) {
		t.Fatalf("Tail(9) err = %v, want ErrSeqAhead", err)
	}

	if err := l.Checkpoint(func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if base, next := l.SeqState(); base != 4 || next != 4 {
		t.Fatalf("post-checkpoint SeqState = [%d, %d), want [4, 4)", base, next)
	}
	if _, _, err := l.Tail(2, 0); !errors.Is(err, walog.ErrSeqGap) {
		t.Fatalf("Tail(2) after checkpoint err = %v, want ErrSeqGap", err)
	}

	// The sequence keeps climbing across the checkpoint: new records are
	// servable from the new base.
	if err := l.Append([]byte("after")); err != nil {
		t.Fatal(err)
	}
	frames, next, err := l.Tail(4, 0)
	if err != nil || next != 5 {
		t.Fatalf("Tail(4) = next %d, %v", next, err)
	}
	if n, err := walog.ReadStream(frames, func(p []byte) error {
		if string(p) != "after" {
			return fmt.Errorf("payload %q", p)
		}
		return nil
	}); n != 1 || err != nil {
		t.Fatalf("ReadStream = %d, %v", n, err)
	}
}

// TestReadStreamTornMidStream: a frame stream cut mid-record (a torn HTTP
// body) must deliver every record before the tear, then error — never
// silently succeed, never call fn past the damage.
func TestReadStreamTornMidStream(t *testing.T) {
	l, _, _ := collect(t, filepath.Join(t.TempDir(), "log"), walog.Options{})
	defer l.Close()
	for i := 0; i < 5; i++ {
		if err := l.Append(bytes.Repeat([]byte{byte(i)}, 64)); err != nil {
			t.Fatal(err)
		}
	}
	frames, _, err := l.Tail(0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}

	torn := frames[:len(frames)-13] // cut inside the final record
	n, err := walog.ReadStream(torn, func([]byte) error { return nil })
	if err == nil {
		t.Fatal("torn stream: ReadStream returned nil error")
	}
	if n != 4 {
		t.Fatalf("torn stream delivered %d records, want the 4 intact ones", n)
	}

	// Corruption (bit flip inside a payload) fails the CRC the same way.
	flipped := append([]byte(nil), frames...)
	flipped[len(flipped)-5] ^= 0xFF
	if _, err := walog.ReadStream(flipped, func([]byte) error { return nil }); err == nil {
		t.Fatal("corrupt stream: ReadStream returned nil error")
	}

	// fn's own error propagates and stops the stream.
	boom := errors.New("boom")
	n, err = walog.ReadStream(frames, func(p []byte) error {
		if p[0] == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || n != 2 {
		t.Fatalf("fn error: n=%d err=%v", n, err)
	}
}

// TestWaitCommitted covers the long-poll primitive: wake on commit, honor
// ctx, and fail out when the log closes.
func TestWaitCommitted(t *testing.T) {
	l, _, _ := collect(t, filepath.Join(t.TempDir(), "log"), walog.Options{})

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := l.WaitCommitted(ctx, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("empty-log wait err = %v", err)
	}

	done := make(chan error, 1)
	go func() { done <- l.WaitCommitted(context.Background(), 1) }()
	time.Sleep(10 * time.Millisecond)
	if err := l.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("wait after commit: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("WaitCommitted did not wake on commit")
	}
	if err := l.WaitCommitted(context.Background(), 1); err != nil {
		t.Fatalf("already-committed wait: %v", err)
	}

	go func() { done <- l.WaitCommitted(context.Background(), 99) }()
	time.Sleep(10 * time.Millisecond)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, walog.ErrClosed) {
			t.Fatalf("wait across close err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("WaitCommitted did not wake on close")
	}
}
