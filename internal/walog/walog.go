package walog

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"pairfn/internal/extarray"
)

// ErrClosed is returned by appends after Close.
var ErrClosed = errors.New("walog: log closed")

// File is the handle the log appends through. *os.File satisfies it; fault
// injectors (e.g. tabled.FaultInjector) wrap it to exercise torn writes
// and sync failures. Replay always reads the raw file.
type File interface {
	io.Writer
	Sync() error
	Truncate(size int64) error
	Seek(offset int64, whence int) (int64, error)
	Close() error
}

// An Observer receives log instrumentation. All methods are called outside
// the caller's state locks but may be called under the log's own mutex, so
// implementations must be cheap and non-blocking (counter increments).
type Observer interface {
	// LogAppend reports one appended record of n framed bytes.
	LogAppend(n int64)
	// LogSync reports one fsync attempt and its latency.
	LogSync(d time.Duration, err error)
	// LogSize reports the current log length.
	LogSize(n int64)
	// LogReplay reports the boot-time replay outcome.
	LogReplay(records int, torn bool)
	// LogCheckpoint reports one checkpoint (log reset).
	LogCheckpoint()
}

// Options configures Open.
type Options struct {
	// SyncWindow is the group-commit window: appends within one window
	// share a single fsync, trading up to SyncWindow of added ack latency
	// for an order-of-magnitude fewer syncs under load. 0 fsyncs per
	// Wait (strictest; concurrent Waits still share syncs, because one
	// fsync covers every frame enqueued before it).
	SyncWindow time.Duration
	// Observer receives instrumentation (nil records nothing).
	Observer Observer
	// WrapFile, when non-nil, wraps the append-side file handle — the
	// fault-injection seam. Replay always reads the raw file.
	WrapFile func(File) File
	// Name prefixes error messages, e.g. "tabled: wal". Empty uses "walog".
	Name string
	// StatePath, when non-empty, names the durable StreamState sidecar
	// (see state.go): the log's base sequence and epoch marks survive
	// restarts, so checkpointed records keep their numbers across boots
	// and promotions are durable. Empty keeps the pre-sidecar behavior
	// (base restarts at zero; epochs unavailable).
	StatePath string
	// SnapshotSeq is the replication cut embedded in the snapshot the
	// caller just loaded (0 when none). When it is beyond the sidecar's
	// base, the log on disk predates the snapshot — its records are
	// already folded in — so Open discards the log before replay and
	// adopts SnapshotSeq as the base. This one rule resolves every
	// checkpoint/reseed crash window; see state.go.
	SnapshotSeq uint64
	// SnapshotEpoch is the epoch embedded in that snapshot; if newer than
	// every recorded mark it contributes a mark at the base (a reseed
	// that crashed between installing the snapshot and resetting the log
	// still comes up in the new epoch).
	SnapshotEpoch uint64
}

// A Log is an append-only, CRC-framed, fsync-before-ack record log. All
// methods are safe for concurrent use. A Log that hits an append or sync
// failure becomes sticky-failed: every later append returns the original
// error (see the package comment for the degraded-mode contract).
type Log struct {
	path   string
	name   string
	window time.Duration
	obs    Observer

	// readMu serializes Tail's file reads against Checkpoint's truncation:
	// Tail reads a committed byte region outside mu (so appends keep
	// flowing during the disk read), which is only safe while no
	// checkpoint can cut the file under it. Lock order: readMu before mu.
	readMu sync.RWMutex

	mu      sync.Mutex
	f       File
	size    int64
	synced  int64 // bytes known durable (direct-sync mode)
	failed  error
	closed  bool
	waiters []chan error

	// Streaming state (see stream.go). base is the sequence number of the
	// first record in the file (records checkpointed away keep their
	// numbers); offs[k] is the byte offset of record base+k; committed is
	// the sequence just past the last durable record — the replication
	// horizon. commitGen is closed and replaced whenever committed
	// advances, waking WaitCommitted long-polls.
	base      uint64
	offs      []int64
	committed uint64
	commitGen chan struct{}

	// Durable stream identity (see state.go): statePath is the sidecar
	// file ("" disables persistence), marks the epoch history.
	statePath string
	marks     []EpochMark

	kick chan struct{}
	done chan struct{}
}

// Open opens (creating if absent) the log at path, replays every intact
// record's payload through apply in log order, truncates any torn or
// corrupt tail, and returns the Log positioned for appends. Replayed
// records are exactly the durable records since the checkpoint the caller
// just loaded; a non-nil error from apply aborts the open.
func Open(path string, apply func(payload []byte) error, opt Options) (*Log, int, error) {
	name := opt.Name
	if name == "" {
		name = "walog"
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, 0, fmt.Errorf("%s: open: %w", name, err)
	}
	st := StreamState{}
	if opt.StatePath != "" {
		if st, err = loadStreamState(opt.StatePath); err != nil {
			f.Close()
			return nil, 0, fmt.Errorf("%s: state: %w", name, err)
		}
	}
	base := st.Base
	if opt.SnapshotSeq > base {
		// The snapshot the caller just loaded cuts beyond this log's
		// base: every record here is already folded into it (a
		// checkpoint or reseed died between writing the snapshot and
		// resetting the log). Discard before replay — replaying would
		// double-apply and misnumber.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, 0, fmt.Errorf("%s: discard stale log: %w", name, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, 0, fmt.Errorf("%s: sync discarded log: %w", name, err)
		}
		base = opt.SnapshotSeq
	}
	replayed := 0
	var (
		offs    []int64
		nextOff int64
	)
	valid, torn, err := extarray.ReadFrames(f, func(payload []byte) error {
		if err := apply(payload); err != nil {
			return err
		}
		offs = append(offs, nextOff)
		nextOff += extarray.FrameLen(payload)
		replayed++
		return nil
	})
	if err != nil {
		f.Close()
		return nil, replayed, fmt.Errorf("%s: replay %s: %w", name, path, err)
	}
	if torn {
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, replayed, fmt.Errorf("%s: truncate torn tail: %w", name, err)
		}
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, replayed, fmt.Errorf("%s: seek: %w", name, err)
	}
	if torn {
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, replayed, fmt.Errorf("%s: sync after truncate: %w", name, err)
		}
	}
	// Make the log file's existence itself durable (first boot creates it).
	if err := extarray.SyncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, replayed, err
	}
	var wf File = f
	if opt.WrapFile != nil {
		wf = opt.WrapFile(wf)
	}
	l := &Log{
		path:      path,
		name:      name,
		window:    opt.SyncWindow,
		obs:       opt.Observer,
		f:         wf,
		size:      valid,
		synced:    valid,
		base:      base,
		offs:      offs,
		committed: base + uint64(len(offs)),
		commitGen: make(chan struct{}),
		kick:      make(chan struct{}, 1),
		done:      make(chan struct{}),
		statePath: opt.StatePath,
	}
	l.marks = normalizeMarks(st.Marks, base, l.committed, opt.SnapshotEpoch)
	if opt.StatePath != "" {
		// Re-persist the normalized state so the boot-time resolution
		// (discard, clamp, snapshot epoch adoption) is itself durable.
		l.mu.Lock()
		err := l.persistStateLocked()
		l.mu.Unlock()
		if err != nil {
			f.Close()
			return nil, replayed, fmt.Errorf("%s: persist state: %w", name, err)
		}
	}
	if l.obs != nil {
		l.obs.LogReplay(replayed, torn)
		l.obs.LogSize(l.size)
	}
	if l.window > 0 {
		go l.syncer()
	} else {
		close(l.done)
	}
	return l, replayed, nil
}

// Size returns the current log length in bytes.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Err returns the sticky failure, if any.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failed
}

// A Ticket is one enqueued record's durability handle. The zero Ticket
// reports durable immediately — callers running without a log pass it
// through unconditionally.
type Ticket struct {
	l   *Log
	off int64      // log size just past this record
	ch  chan error // group-commit completion, when SyncWindow > 0
	err error      // enqueue-time failure (sticky error, closed log)
}

// Append frames payload into the log and waits for durability — Enqueue
// followed by Wait, for callers with no ordering constraint of their own.
func (l *Log) Append(payload []byte) error {
	return l.Enqueue(payload).Wait()
}

// Enqueue frames payload into the log, fixing its position in the record
// order, and returns a Ticket whose Wait blocks until the record is
// durable. Callers whose record order must match their state-mutation
// order call Enqueue while still holding their state lock (Enqueue never
// syncs, so it costs one buffered write) and Wait after releasing it.
func (l *Log) Enqueue(payload []byte) Ticket {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return Ticket{err: l.failed}
	}
	if l.closed {
		return Ticket{err: ErrClosed}
	}
	off := l.size
	n, err := extarray.AppendFrame(l.f, payload)
	l.size += int64(n)
	if err != nil {
		// Bytes may be on disk (a torn frame); the next boot truncates it.
		// Any write failure is sticky: the log can no longer attest
		// durability, so the owner must stop acknowledging writes.
		l.failed = fmt.Errorf("%s: append: %w", l.name, err)
		l.wakeCommittedLocked()
		return Ticket{err: l.failed}
	}
	l.offs = append(l.offs, off)
	if l.obs != nil {
		l.obs.LogAppend(int64(n))
		l.obs.LogSize(l.size)
	}
	if l.window <= 0 {
		return Ticket{l: l, off: l.size}
	}
	ch := make(chan error, 1)
	l.waiters = append(l.waiters, ch)
	select {
	case l.kick <- struct{}{}:
	default: // a sync is already scheduled; it will cover this record
	}
	return Ticket{l: l, ch: ch}
}

// Wait blocks until the enqueued record is durable (or the log has
// failed). Because one fsync covers the whole file prefix, a Wait that
// finds a later sync already happened returns immediately.
func (t Ticket) Wait() error {
	if t.err != nil {
		return t.err
	}
	if t.ch != nil {
		return <-t.ch
	}
	if t.l == nil {
		return nil // zero Ticket: no log configured
	}
	l := t.l
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return l.failed
	}
	if t.off <= l.synced {
		return nil // a concurrent Wait's sync already covered this record
	}
	return l.syncLocked()
}

// syncLocked fsyncs under l.mu and records the outcome. A failure is
// sticky; success marks everything written so far durable.
func (l *Log) syncLocked() error {
	start := time.Now()
	err := l.f.Sync()
	if l.obs != nil {
		l.obs.LogSync(time.Since(start), err)
	}
	if err != nil {
		l.failed = fmt.Errorf("%s: sync: %w", l.name, err)
		l.wakeCommittedLocked()
		return l.failed
	}
	l.synced = l.size
	// Every record in the file is now durable: advance the replication
	// horizon and wake any Tail long-polls waiting for fresh frames.
	if next := l.base + uint64(len(l.offs)); next != l.committed {
		l.committed = next
		l.wakeCommittedLocked()
	}
	return nil
}

// wakeCommittedLocked rotates commitGen so every WaitCommitted loop
// re-checks the log state. Called when the committed horizon advances —
// and on failure or close, so long-polls observe the terminal state
// instead of sleeping until their context expires.
func (l *Log) wakeCommittedLocked() {
	close(l.commitGen)
	l.commitGen = make(chan struct{})
}

// syncer is the group-commit loop: each kick waits out the window so
// concurrent appends pile onto one fsync, then syncs and releases every
// waiter with the shared result.
func (l *Log) syncer() {
	defer close(l.done)
	for range l.kick {
		time.Sleep(l.window)
		l.mu.Lock()
		err := l.syncLocked()
		ws := l.waiters
		l.waiters = nil
		l.mu.Unlock()
		for _, ch := range ws {
			ch <- err
		}
	}
	// Close drained the kick channel; release any stragglers after one
	// final sync so no acknowledged-pending writer is left hanging.
	l.mu.Lock()
	var err error
	if len(l.waiters) > 0 {
		err = l.syncLocked()
	}
	ws := l.waiters
	l.waiters = nil
	l.mu.Unlock()
	for _, ch := range ws {
		ch <- err
	}
}

// Checkpoint runs save (which must persist a consistent snapshot of the
// state the log protects, e.g. via extarray.AtomicWriteFile) and then
// resets the log to empty: the snapshot now carries everything the log
// carried. Appends are blocked for the duration, which is what makes the
// cut airtight — a caller that also holds its own state lock across
// Checkpoint gets a snapshot no record can slip past. On a sticky-failed
// log the snapshot is still taken (it may be the last good persistence
// this process manages) but the log is left alone and the failure is
// returned.
func (l *Log) Checkpoint(save func() error) error {
	return l.CheckpointSeq(func(uint64) error { return save() })
}

// CheckpointSeq is Checkpoint with the cut sequence handed to save: the
// snapshot it writes should embed cut (and the current epoch) so the boot
// rule in Open can resolve a crash between the snapshot write and the
// truncation below. After a successful return the log's base is cut and
// the sidecar (when configured) records it, so record numbering survives
// the restart.
func (l *Log) CheckpointSeq(save func(cut uint64) error) error {
	// Exclude Tail's out-of-lock file reads for the truncation (lock
	// order: readMu before mu, matching Tail).
	l.readMu.Lock()
	defer l.readMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := save(l.base + uint64(len(l.offs))); err != nil {
		return err
	}
	if l.failed != nil {
		return l.failed
	}
	if l.closed {
		return ErrClosed
	}
	if err := l.f.Truncate(0); err != nil {
		l.failed = fmt.Errorf("%s: checkpoint truncate: %w", l.name, err)
		l.wakeCommittedLocked()
		return l.failed
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		l.failed = fmt.Errorf("%s: checkpoint seek: %w", l.name, err)
		l.wakeCommittedLocked()
		return l.failed
	}
	l.size = 0
	l.synced = 0
	// Checkpointed records keep their sequence numbers: the snapshot now
	// carries them, so the log's first record (if any ever lands) is the
	// next sequence. A follower tailing below the new base must resync
	// from a snapshot — Tail reports the gap instead of serving frames.
	l.base += uint64(len(l.offs))
	l.offs = l.offs[:0]
	// Epoch history before the cut is subsumed by the snapshot: only the
	// mark defining the current epoch still matters.
	if n := len(l.marks); n > 1 {
		l.marks = append(l.marks[:0], l.marks[n-1])
	}
	if l.committed != l.base {
		l.committed = l.base
		l.wakeCommittedLocked()
	}
	if l.obs != nil {
		l.obs.LogSize(0)
		l.obs.LogCheckpoint()
	}
	if err := l.syncLocked(); err != nil {
		return err
	}
	// Persist the advanced base after the truncate: a crash in between
	// leaves the old base on disk, which the snapshot's embedded cut
	// overrides at the next Open (SnapshotSeq > base discards nothing —
	// the log is already empty — and adopts the cut).
	if err := l.persistStateLocked(); err != nil {
		l.failed = fmt.Errorf("%s: checkpoint persist state: %w", l.name, err)
		l.wakeCommittedLocked()
		return l.failed
	}
	return nil
}

// Close syncs outstanding records and closes the file. Appends after
// Close return ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.wakeCommittedLocked() // long-polls must observe the close, not time out
	if l.window > 0 {
		close(l.kick) // safe: appends check closed under mu before kicking
	}
	l.mu.Unlock()
	<-l.done
	l.mu.Lock()
	defer l.mu.Unlock()
	var err error
	if l.failed == nil {
		err = l.syncLocked()
	}
	if cerr := l.f.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("%s: close: %w", l.name, cerr)
	}
	return err
}
