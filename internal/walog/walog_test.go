package walog_test

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pairfn/internal/walog"
)

// collect opens the log at path with an apply that records every payload,
// returning the payloads, the replay count, and the open log.
func collect(t *testing.T, path string, opt walog.Options) (*walog.Log, [][]byte, int) {
	t.Helper()
	var got [][]byte
	l, n, err := walog.Open(path, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	}, opt)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, got, n
}

// TestAppendReplay is the core durability round trip: records appended and
// synced come back in order, byte for byte, at the next Open.
func TestAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	l, _, n := collect(t, path, walog.Options{})
	if n != 0 {
		t.Fatalf("fresh log replayed %d records", n)
	}
	var want [][]byte
	for i := 0; i < 50; i++ {
		p := []byte(fmt.Sprintf("record-%03d", i))
		want = append(want, p)
		if err := l.Append(p); err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
	}
	if l.Size() == 0 {
		t.Fatal("Size = 0 after 50 appends")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, got, n := collect(t, path, walog.Options{})
	defer l2.Close()
	if n != len(want) {
		t.Fatalf("replayed %d records, want %d", n, len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestTornTailTruncated writes a partial frame after real records: Open
// must replay the intact prefix, truncate the garbage, and leave the log
// appendable.
func TestTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	l, _, _ := collect(t, path, walog.Options{})
	for i := 0; i < 5; i++ {
		if err := l.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	valid := l.Size()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Half a frame header: unmistakably torn.
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, got, n := collect(t, path, walog.Options{})
	if n != 5 || len(got) != 5 {
		t.Fatalf("replayed %d records after torn tail, want 5", n)
	}
	if l2.Size() != valid {
		t.Fatalf("Size after torn-tail truncation = %d, want %d", l2.Size(), valid)
	}
	// The log must still accept appends and survive another cycle.
	if err := l2.Append([]byte("after")); err != nil {
		t.Fatalf("append after torn-tail recovery: %v", err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	l3, got, n := collect(t, path, walog.Options{})
	defer l3.Close()
	if n != 6 || string(got[5]) != "after" {
		t.Fatalf("second recovery replayed %d records (last %q), want 6 ending %q", n, got[len(got)-1], "after")
	}
}

// TestGroupCommit exercises the SyncWindow > 0 path: concurrent appends
// share fsyncs, every Append still blocks until its record is durable, and
// the records all replay.
func TestGroupCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	l, _, _ := collect(t, path, walog.Options{SyncWindow: time.Millisecond})
	const writers, each = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := l.Append([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, _, n := collect(t, path, walog.Options{SyncWindow: time.Millisecond})
	defer l2.Close()
	if n != writers*each {
		t.Fatalf("replayed %d records, want %d", n, writers*each)
	}
}

// TestEnqueueOrderWait pins the two-phase contract: Enqueue fixes record
// order, Wait can be called later (and out of order) and still attests
// durability of exactly that record's prefix.
func TestEnqueueOrderWait(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	l, _, _ := collect(t, path, walog.Options{})
	var tickets []walog.Ticket
	for i := 0; i < 10; i++ {
		tickets = append(tickets, l.Enqueue([]byte{byte(i)}))
	}
	// Waiting on the last first syncs the whole prefix; earlier Waits
	// return immediately.
	for i := len(tickets) - 1; i >= 0; i-- {
		if err := tickets[i].Wait(); err != nil {
			t.Fatalf("Wait(%d): %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, got, _ := collect(t, path, walog.Options{})
	defer l2.Close()
	for i := range got {
		if got[i][0] != byte(i) {
			t.Fatalf("record %d = %v: enqueue order not preserved", i, got[i])
		}
	}
}

// TestZeroTicket pins the no-log convention: the zero Ticket is durable
// immediately, so callers without a journal pass it through unconditionally.
func TestZeroTicket(t *testing.T) {
	if err := (walog.Ticket{}).Wait(); err != nil {
		t.Fatalf("zero Ticket Wait = %v, want nil", err)
	}
}

// TestClosed: appends after Close fail with ErrClosed; Close is idempotent.
func TestClosed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	l, _, _ := collect(t, path, walog.Options{})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("x")); !errors.Is(err, walog.ErrClosed) {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}
}

// flakyFile wraps the append-side handle; failures are toggled after Open
// so replay (which reads the raw file) is unaffected.
type flakyFile struct {
	walog.File
	failWrite atomic.Bool
	failSync  atomic.Bool
}

var errInjected = errors.New("injected fault")

func (f *flakyFile) Write(p []byte) (int, error) {
	if f.failWrite.Load() {
		return 0, errInjected
	}
	return f.File.Write(p)
}

func (f *flakyFile) Sync() error {
	if f.failSync.Load() {
		return errInjected
	}
	return f.File.Sync()
}

// TestStickyFailure: a sync failure poisons the log permanently — every
// later append reports the original failure even after the fault clears,
// because the log can no longer attest which records are durable.
func TestStickyFailure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	var ff *flakyFile
	l, _, _ := collect(t, path, walog.Options{
		WrapFile: func(f walog.File) walog.File { ff = &flakyFile{File: f}; return ff },
	})
	defer l.Close()
	if err := l.Append([]byte("good")); err != nil {
		t.Fatal(err)
	}
	ff.failSync.Store(true)
	err := l.Append([]byte("doomed"))
	if !errors.Is(err, errInjected) {
		t.Fatalf("append during fault = %v, want injected fault", err)
	}
	ff.failSync.Store(false)
	if err2 := l.Append([]byte("late")); !errors.Is(err2, errInjected) {
		t.Fatalf("append after fault cleared = %v, want sticky original", err2)
	}
	if l.Err() == nil {
		t.Fatal("Err() = nil on a failed log")
	}
}

// TestStickyWriteFailure: an append-side write failure is equally sticky.
func TestStickyWriteFailure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	var ff *flakyFile
	l, _, _ := collect(t, path, walog.Options{
		WrapFile: func(f walog.File) walog.File { ff = &flakyFile{File: f}; return ff },
	})
	defer l.Close()
	ff.failWrite.Store(true)
	if err := l.Append([]byte("x")); !errors.Is(err, errInjected) {
		t.Fatalf("append = %v, want injected fault", err)
	}
	ff.failWrite.Store(false)
	if err := l.Append([]byte("y")); err == nil {
		t.Fatal("append succeeded after write failure; stickiness lost")
	}
}

// TestCheckpoint: a checkpoint resets the log to empty (the snapshot now
// carries the state), and only post-checkpoint records replay.
func TestCheckpoint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log")
	l, _, _ := collect(t, path, walog.Options{})
	for i := 0; i < 10; i++ {
		if err := l.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	saved := false
	if err := l.Checkpoint(func() error { saved = true; return nil }); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if !saved {
		t.Fatal("Checkpoint did not run save")
	}
	if l.Size() != 0 {
		t.Fatalf("Size after checkpoint = %d, want 0", l.Size())
	}
	if err := l.Append([]byte("post")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, got, n := collect(t, path, walog.Options{})
	defer l2.Close()
	if n != 1 || string(got[0]) != "post" {
		t.Fatalf("replayed %d records %q, want just %q", n, got, "post")
	}
}

// TestCheckpointSaveFailure: a failing save leaves the log untouched — the
// old snapshot plus the intact log still reconstruct the state.
func TestCheckpointSaveFailure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	l, _, _ := collect(t, path, walog.Options{})
	for i := 0; i < 3; i++ {
		if err := l.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	size := l.Size()
	saveErr := errors.New("save failed")
	if err := l.Checkpoint(func() error { return saveErr }); !errors.Is(err, saveErr) {
		t.Fatalf("Checkpoint = %v, want save error", err)
	}
	if l.Size() != size {
		t.Fatalf("Size after failed save = %d, want untouched %d", l.Size(), size)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, _, n := collect(t, path, walog.Options{})
	defer l2.Close()
	if n != 3 {
		t.Fatalf("replayed %d records after failed checkpoint, want 3", n)
	}
}

// TestReplayApplyError: a failing apply aborts Open — the owner must not
// come up on state it could not reconstruct.
func TestReplayApplyError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	l, _, _ := collect(t, path, walog.Options{})
	if err := l.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	applyErr := errors.New("apply rejected")
	if _, _, err := walog.Open(path, func([]byte) error { return applyErr }, walog.Options{}); !errors.Is(err, applyErr) {
		t.Fatalf("Open with failing apply = %v, want apply error", err)
	}
}
