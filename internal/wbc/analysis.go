package wbc

import (
	"fmt"
	"sort"
)

// TaskRecord is one issued task reconstructed from the ledger alone.
type TaskRecord struct {
	Task TaskID
	Row  int64
	Seq  int64
	Vol  VolunteerID
}

// History reconstructs the complete issuance history — which volunteer is
// accountable for every task ever issued — purely from the ledger's APF,
// binding records and overrides, with no per-task log. This is the §4
// scheme's payoff made explicit: the allocation function *is* the
// database. Records are returned in increasing task-index order.
func (l *Ledger) History() ([]TaskRecord, error) {
	var out []TaskRecord
	for row := range l.rows {
		issued := l.Issued(row)
		for seq := int64(1); seq <= issued; seq++ {
			z, err := l.t.Encode(row, seq)
			if err != nil {
				return nil, fmt.Errorf("wbc: History: 𝒯(%d, %d): %w", row, seq, err)
			}
			vol, _, _, err := l.Attribute(TaskID(z))
			if err != nil {
				return nil, fmt.Errorf("wbc: History: attribute %d: %w", z, err)
			}
			out = append(out, TaskRecord{Task: TaskID(z), Row: row, Seq: seq, Vol: vol})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Task < out[j].Task })
	return out, nil
}

// ExpectedBadBeforeBan returns the expected number of bad results a
// volunteer submits before accumulating `strikes` audited-and-caught
// strikes, under independent audits at rate p: strikes/p (the negative
// binomial mean). It quantifies the §4 audit-policy trade-off the
// simulation measures: cheaper audits ⇒ more damage before a ban.
func ExpectedBadBeforeBan(auditRate float64, strikes int) (float64, error) {
	if auditRate <= 0 || auditRate > 1 {
		return 0, fmt.Errorf("wbc: audit rate %v outside (0, 1]", auditRate)
	}
	if strikes < 1 {
		return 0, fmt.Errorf("wbc: strike limit %d < 1", strikes)
	}
	return float64(strikes) / auditRate, nil
}

// DetectionProbability returns the probability that a volunteer who has
// submitted m bad results has accumulated at least `strikes` strikes under
// independent audits at rate p — the tail of a Binomial(m, p).
func DetectionProbability(auditRate float64, strikes int, m int) (float64, error) {
	if auditRate < 0 || auditRate > 1 {
		return 0, fmt.Errorf("wbc: audit rate %v outside [0, 1]", auditRate)
	}
	if strikes < 1 || m < 0 {
		return 0, fmt.Errorf("wbc: strikes %d, m %d invalid", strikes, m)
	}
	// P[X ≥ strikes] = 1 − Σ_{i<strikes} C(m, i) p^i (1−p)^{m−i}.
	var below float64
	for i := 0; i < strikes && i <= m; i++ {
		below += binomPMF(m, i, auditRate)
	}
	p := 1 - below
	if p < 0 {
		p = 0
	}
	return p, nil
}

func binomPMF(n, k int, p float64) float64 {
	// C(n, k) p^k (1−p)^{n−k}, computed multiplicatively for stability at
	// the modest n the simulator uses.
	c := 1.0
	for i := 0; i < k; i++ {
		c = c * float64(n-i) / float64(i+1)
	}
	pk := 1.0
	for i := 0; i < k; i++ {
		pk *= p
	}
	q := 1.0
	for i := 0; i < n-k; i++ {
		q *= 1 - p
	}
	return c * pk * q
}
