package wbc

import (
	"math"
	"testing"

	"pairfn/internal/apf"
)

// TestHistoryReconstruction checks that History rebuilt from the ledger
// alone matches every task actually issued, including churned rows and
// reissues.
func TestHistoryReconstruction(t *testing.T) {
	c := newTestCoordinator(t, apf.NewTStar(), 0, 1)
	type issue struct {
		task TaskID
		vol  VolunteerID
	}
	var issued []issue
	v1, v2 := c.MustRegister(1), c.MustRegister(2)
	for i := 0; i < 7; i++ {
		k, err := c.NextTask(v1)
		if err != nil {
			t.Fatal(err)
		}
		issued = append(issued, issue{k, v1})
		if _, err := c.Submit(v1, k, c.cfg.Workload.Do(k)); err != nil {
			t.Fatal(err)
		}
		k, err = c.NextTask(v2)
		if err != nil {
			t.Fatal(err)
		}
		issued = append(issued, issue{k, v2})
		if _, err := c.Submit(v2, k, c.cfg.Workload.Do(k)); err != nil {
			t.Fatal(err)
		}
	}
	// Churn: v1 leaves with one task outstanding; v3 inherits row and task.
	k, err := c.NextTask(v1)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Depart(v1); err != nil {
		t.Fatal(err)
	}
	v3 := c.MustRegister(1)
	rk, err := c.NextTask(v3)
	if err != nil {
		t.Fatal(err)
	}
	if rk != k {
		t.Fatalf("expected reissue of %d, got %d", k, rk)
	}
	issued = append(issued, issue{rk, v3})

	hist, err := c.Ledger().History()
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[TaskID]VolunteerID, len(issued))
	for _, is := range issued {
		want[is.task] = is.vol
	}
	if len(hist) != len(want) {
		t.Fatalf("history has %d records, want %d", len(hist), len(want))
	}
	for i, rec := range hist {
		if i > 0 && hist[i-1].Task >= rec.Task {
			t.Fatalf("history not sorted at %d", i)
		}
		if wv, ok := want[rec.Task]; !ok || wv != rec.Vol {
			t.Errorf("history: task %d → vol %d, want %d", rec.Task, rec.Vol, wv)
		}
		// Cross-check the APF inversion.
		row, seq, err := c.Ledger().APF().Decode(int64(rec.Task))
		if err != nil || row != rec.Row || seq != rec.Seq {
			t.Errorf("record (%d, %d) vs decode (%d, %d)", rec.Row, rec.Seq, row, seq)
		}
	}
}

func TestExpectedBadBeforeBan(t *testing.T) {
	got, err := ExpectedBadBeforeBan(0.25, 2)
	if err != nil || got != 8 {
		t.Errorf("ExpectedBadBeforeBan(0.25, 2) = %v, %v; want 8", got, err)
	}
	if _, err := ExpectedBadBeforeBan(0, 1); err == nil {
		t.Error("rate 0 should fail")
	}
	if _, err := ExpectedBadBeforeBan(0.5, 0); err == nil {
		t.Error("strikes 0 should fail")
	}
}

func TestDetectionProbability(t *testing.T) {
	// strikes = 1: P = 1 − (1−p)^m.
	for _, m := range []int{0, 1, 5, 20} {
		got, err := DetectionProbability(0.3, 1, m)
		if err != nil {
			t.Fatal(err)
		}
		want := 1 - math.Pow(0.7, float64(m))
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("P(detect|m=%d) = %v, want %v", m, got, want)
		}
	}
	// Monotone in m; bounded by [0, 1].
	prev := -1.0
	for m := 0; m <= 30; m++ {
		p, err := DetectionProbability(0.2, 3, m)
		if err != nil {
			t.Fatal(err)
		}
		if p < prev-1e-12 || p < 0 || p > 1 {
			t.Fatalf("P not monotone/bounded at m=%d: %v after %v", m, p, prev)
		}
		prev = p
	}
	if _, err := DetectionProbability(2, 1, 1); err == nil {
		t.Error("rate 2 should fail")
	}
	if _, err := DetectionProbability(0.5, 1, -1); err == nil {
		t.Error("m = -1 should fail")
	}
}

// TestBanLatencyMatchesTheory runs many seeded simulations of a single
// always-bad volunteer and compares the mean number of bad results it
// lands before being banned against strikes/auditRate (±50% — it is a
// stochastic check, but with 200 runs the estimator is tight).
func TestBanLatencyMatchesTheory(t *testing.T) {
	const (
		auditRate = 0.5
		strikes   = 2
		runs      = 200
	)
	var total int64
	for seed := int64(0); seed < runs; seed++ {
		c, err := NewCoordinator(Config{
			APF: apf.NewTHash(), Workload: DivisorSum{},
			AuditRate: auditRate, StrikeLimit: strikes, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		v := c.MustRegister(1)
		for {
			k, err := c.NextTask(v)
			if err != nil {
				break // banned
			}
			if _, err := c.Submit(v, k, -1); err != nil {
				break
			}
		}
		total += c.Metrics().Completed
	}
	mean := float64(total) / runs
	want, _ := ExpectedBadBeforeBan(auditRate, strikes)
	if mean < want*0.5 || mean > want*1.5 {
		t.Errorf("mean bad-before-ban = %v, theory %v", mean, want)
	}
}
