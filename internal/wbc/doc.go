// Package wbc implements the Web-Based Computing accountability scheme of
// §4: volunteers register with a server, repeatedly receive tasks, and
// return results; an additive pairing function 𝒯 links volunteer v's t-th
// task to task index 𝒯(v, t), so the server can always answer "who computed
// task k?" by computing 𝒯⁻¹(k) — a computationally lightweight mechanism
// for *accountability* (not security): frequently errant volunteers are
// identified and banned.
//
// The package contains the task-allocation coordinator (the APF ledger, the
// §4 front end that lets volunteers arrive and depart dynamically and keeps
// faster volunteers on smaller row indices), volunteer behaviour models for
// simulation (honest, careless, malicious), auditing and banning, the
// memory-footprint accounting that motivates compact APFs (with strides
// S_v the task table spans max-allocated-index slots, so slowly growing
// strides keep it small), and the production HTTP face of the scheme: the
// JSON/HTTP volunteer protocol (http.go), a typed client, and the
// observability layer (observe.go) — content-negotiated /metrics
// (Prometheus text or legacy JSON), /healthz and /readyz probes, request
// middleware and coordinator/APF instrumentation via internal/obs.
//
// # Concurrency
//
// Coordinator and Voting are safe for concurrent use by volunteer
// goroutines (one mutex around all state transitions); the HTTP handlers
// inherit that safety. Ledger is read-mostly and must not be mutated
// concurrently with coordinator use — callers other than the coordinator
// should treat it as read-only. Instrumentation handles are lock-free
// atomics and add no lock ordering.
//
// # Overflow
//
// Task indices inherit the APF's exact-int64 contract: when a stride or
// task index would leave int64 range the ledger surfaces apf.ErrOverflow
// to the volunteer instead of issuing a wrapped index — an allocation
// failure, never a silent collision (collisions would destroy the
// attribution guarantee the scheme exists for).
package wbc
