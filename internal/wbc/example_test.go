package wbc_test

import (
	"fmt"

	"pairfn/internal/apf"
	"pairfn/internal/wbc"
)

func ExampleCoordinator() {
	c, _ := wbc.NewCoordinator(wbc.Config{
		APF:      apf.NewTHash(),
		Workload: wbc.DivisorSum{},
	})
	v := c.MustRegister(1)
	k, _ := c.NextTask(v)
	_, _ = c.Submit(v, k, wbc.DivisorSum{}.Do(k))
	who, _ := c.Attribute(k)
	fmt.Println(who == v)
	// Output: true
}

func ExampleLedger_Attribute() {
	c, _ := wbc.NewCoordinator(wbc.Config{
		APF:      apf.NewTHash(),
		Workload: wbc.DivisorSum{},
	})
	v := c.MustRegister(1)
	for i := 0; i < 3; i++ {
		k, _ := c.NextTask(v)
		_, _ = c.Submit(v, k, 0)
	}
	// The third task of row 1 under 𝒯# is 𝒯(1, 3) = 2·2 + 1 = 5.
	vol, row, seq, _ := c.Ledger().Attribute(5)
	fmt.Println(vol, row, seq)
	// Output: 1 1 3
}

func ExampleExpectedBadBeforeBan() {
	// With 25% audits and a 2-strike policy, an always-bad volunteer lands
	// 8 bad results on average before being banned.
	e, _ := wbc.ExpectedBadBeforeBan(0.25, 2)
	fmt.Println(e)
	// Output: 8
}
