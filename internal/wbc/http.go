package wbc

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
)

// §4 describes WBC operationally: "volunteers register with a WBC website
// … each volunteer visits the website from time to time to receive a task
// … returns the results from that task and receives a new task". This file
// is that website: a JSON-over-HTTP facade for a Coordinator, plus a typed
// client. The protocol carries only integers — volunteer ids, task
// indices, results — because the APF is the whole addressing scheme.
//
// Endpoints:
//
//	POST /register  {"speed": 1.5}                     → {"volunteer": 7}
//	POST /next      {"volunteer": 7}                   → {"task": 912}
//	POST /submit    {"volunteer": 7, "task": 912,
//	                 "result": 4}                      → {"caught": false}
//	POST /heartbeat {"volunteer": 7}                   → {"ok": true}
//	GET  /attribute?task=912                           → {"volunteer": 7}
//	GET  /metrics                                      → Prometheus text, or
//	                                                     the JSON Metrics
//	                                                     snapshot with
//	                                                     Accept: application/json
//	GET  /healthz, /readyz                             → probes (observe.go)
//
// Coordinator errors map to HTTP statuses: banned/departed → 403, unknown
// volunteer/task → 404, ownership violations → 409, domain errors → 400.

type registerRequest struct {
	Speed float64 `json:"speed"`
}

type registerResponse struct {
	Volunteer VolunteerID `json:"volunteer"`
}

type nextRequest struct {
	Volunteer VolunteerID `json:"volunteer"`
}

type nextResponse struct {
	Task TaskID `json:"task"`
}

type submitRequest struct {
	Volunteer VolunteerID `json:"volunteer"`
	Task      TaskID      `json:"task"`
	Result    int64       `json:"result"`
}

type submitResponse struct {
	Caught bool `json:"caught"`
}

type heartbeatRequest struct {
	Volunteer VolunteerID `json:"volunteer"`
}

type heartbeatResponse struct {
	OK bool `json:"ok"`
}

type attributeResponse struct {
	Volunteer VolunteerID `json:"volunteer"`
	Row       int64       `json:"row"`
	Seq       int64       `json:"seq"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// NewHTTPHandler returns the WBC website serving c with default
// observability: a private metrics registry behind /metrics and no request
// logging. Production servers use NewObservedHandler to share the
// registry with the coordinator and control readiness.
func NewHTTPHandler(c *Coordinator) http.Handler {
	return NewObservedHandler(c, ServerOptions{})
}

// apiMux builds the volunteer-protocol endpoints. The observability
// endpoints (/metrics, /healthz, /readyz) are layered on by
// NewObservedHandler, which owns the registry they report from.
func apiMux(c *Coordinator) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /register", func(w http.ResponseWriter, r *http.Request) {
		var req registerRequest
		if !decode(w, r, &req) {
			return
		}
		id, err := c.Register(req.Speed)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, registerResponse{Volunteer: id})
	})
	mux.HandleFunc("POST /heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req heartbeatRequest
		if !decode(w, r, &req) {
			return
		}
		if err := c.Heartbeat(req.Volunteer); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, heartbeatResponse{OK: true})
	})
	mux.HandleFunc("POST /next", func(w http.ResponseWriter, r *http.Request) {
		var req nextRequest
		if !decode(w, r, &req) {
			return
		}
		k, err := c.NextTask(req.Volunteer)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, nextResponse{Task: k})
	})
	mux.HandleFunc("POST /submit", func(w http.ResponseWriter, r *http.Request) {
		var req submitRequest
		if !decode(w, r, &req) {
			return
		}
		caught, err := c.Submit(req.Volunteer, req.Task, req.Result)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, submitResponse{Caught: caught})
	})
	mux.HandleFunc("POST /depart", func(w http.ResponseWriter, r *http.Request) {
		var req nextRequest
		if !decode(w, r, &req) {
			return
		}
		if err := c.Depart(req.Volunteer); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, struct{}{})
	})
	mux.HandleFunc("GET /attribute", func(w http.ResponseWriter, r *http.Request) {
		k, err := strconv.ParseInt(r.URL.Query().Get("task"), 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "task must be an integer"})
			return
		}
		vol, row, seq, err := c.Ledger().Attribute(TaskID(k))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, attributeResponse{Volunteer: vol, Row: row, Seq: seq})
	})
	return mux
}

func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		// The protocol carries a handful of integers; a body hitting the
		// MaxBytesReader cap (observe.go) is abuse, not a volunteer.
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorResponse{Error: fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)})
			return false
		}
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrBanned), errors.Is(err, ErrDeparted):
		status = http.StatusForbidden
	case errors.Is(err, ErrUnknownVolunteer), errors.Is(err, ErrUnknownTask):
		status = http.StatusNotFound
	case errors.Is(err, ErrNotIssuedToYou):
		status = http.StatusConflict
	case errors.Is(err, ErrDegraded):
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// A StatusError is a non-200 reply from the WBC website. It carries the
// HTTP status code so callers can classify failures: 5xx is the server
// struggling (worth retrying), 4xx is a verdict — a ban, an unknown id, an
// ownership conflict — that no retry will change.
type StatusError struct {
	Code int    // HTTP status code
	Path string // endpoint, e.g. "/next"
	Msg  string // server-provided error message, if any
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("wbc: %s: %s (status %d)", e.Path, e.Msg, e.Code)
}

// Client is a typed volunteer-side client for the WBC website.
type Client struct {
	// BaseURL is the server root, e.g. "http://host:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

func (cl *Client) httpc() *http.Client {
	if cl.HTTPClient != nil {
		return cl.HTTPClient
	}
	return http.DefaultClient
}

func (cl *Client) post(path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	r, err := cl.httpc().Post(cl.BaseURL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		var e errorResponse
		_ = json.NewDecoder(r.Body).Decode(&e)
		return &StatusError{Code: r.StatusCode, Path: path, Msg: e.Error}
	}
	return json.NewDecoder(r.Body).Decode(resp)
}

// Register registers a volunteer with the given speed hint.
func (cl *Client) Register(speed float64) (VolunteerID, error) {
	var resp registerResponse
	if err := cl.post("/register", registerRequest{Speed: speed}, &resp); err != nil {
		return 0, err
	}
	return resp.Volunteer, nil
}

// Next fetches the next task for volunteer id.
func (cl *Client) Next(id VolunteerID) (TaskID, error) {
	var resp nextResponse
	if err := cl.post("/next", nextRequest{Volunteer: id}, &resp); err != nil {
		return 0, err
	}
	return resp.Task, nil
}

// Submit returns the result for task k.
func (cl *Client) Submit(id VolunteerID, k TaskID, result int64) (caught bool, err error) {
	var resp submitResponse
	if err := cl.post("/submit", submitRequest{Volunteer: id, Task: k, Result: result}, &resp); err != nil {
		return false, err
	}
	return resp.Caught, nil
}

// Depart deregisters volunteer id.
func (cl *Client) Depart(id VolunteerID) error {
	var resp struct{}
	return cl.post("/depart", nextRequest{Volunteer: id}, &resp)
}

// Heartbeat renews volunteer id's lease.
func (cl *Client) Heartbeat(id VolunteerID) error {
	var resp heartbeatResponse
	return cl.post("/heartbeat", heartbeatRequest{Volunteer: id}, &resp)
}

// Metrics fetches the coordinator's JSON metrics snapshot (the legacy
// /metrics representation, selected via Accept: application/json; the
// default representation is Prometheus text for scrapers).
func (cl *Client) Metrics() (Metrics, error) {
	req, err := http.NewRequest(http.MethodGet, cl.BaseURL+"/metrics", nil)
	if err != nil {
		return Metrics{}, err
	}
	req.Header.Set("Accept", "application/json")
	r, err := cl.httpc().Do(req)
	if err != nil {
		return Metrics{}, err
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		return Metrics{}, &StatusError{Code: r.StatusCode, Path: "/metrics"}
	}
	var m Metrics
	if err := json.NewDecoder(r.Body).Decode(&m); err != nil {
		return Metrics{}, err
	}
	return m, nil
}

// Attribute asks the server who computed task k.
func (cl *Client) Attribute(k TaskID) (VolunteerID, error) {
	r, err := cl.httpc().Get(fmt.Sprintf("%s/attribute?task=%d", cl.BaseURL, k))
	if err != nil {
		return 0, err
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		var e errorResponse
		_ = json.NewDecoder(r.Body).Decode(&e)
		return 0, &StatusError{Code: r.StatusCode, Path: "/attribute", Msg: e.Error}
	}
	var resp attributeResponse
	if err := json.NewDecoder(r.Body).Decode(&resp); err != nil {
		return 0, err
	}
	return resp.Volunteer, nil
}
