package wbc

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pairfn/internal/apf"
	"pairfn/internal/walog"
)

// This file pins the abuse-hardening contract of the WBC website: bounded
// request bodies (413), per-request timeouts (503 without wedging the
// connection), heartbeat plumbing, and the degraded read-only posture when
// the journal fails underneath a live server.

// TestHTTPBodyLimit: a body over MaxBodyBytes answers 413 with a typed
// error, and the server keeps working for well-behaved clients.
func TestHTTPBodyLimit(t *testing.T) {
	srv, _ := newTestServer(t, 0, 1)
	// Valid JSON the decoder has to read all the way through — it hits the
	// byte cap mid-stream rather than failing fast on a syntax error.
	big := []byte(`{"speed":1,"pad":"` + strings.Repeat("x", DefaultMaxBodyBytes+1) + `"}`)
	resp, err := http.Post(srv.URL+"/register", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d (%s), want 413", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "exceeds") {
		t.Fatalf("413 body %q does not name the limit", body)
	}
	// The same connection pool still serves a normal registration.
	cl := &Client{BaseURL: srv.URL}
	if _, err := cl.Register(1); err != nil {
		t.Fatalf("register after oversized request: %v", err)
	}
}

// TestHTTPBodyLimitDisabled: a negative MaxBodyBytes removes the cap.
func TestHTTPBodyLimitDisabled(t *testing.T) {
	c, err := NewCoordinator(Config{APF: apf.NewTHash(), Workload: DivisorSum{}})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewObservedHandler(c, ServerOptions{MaxBodyBytes: -1}))
	defer srv.Close()
	pad := strings.Repeat(" ", DefaultMaxBodyBytes)
	resp, err := http.Post(srv.URL+"/register", "application/json",
		strings.NewReader(`{"speed":1}`+pad))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("uncapped big body: status %d, want 200", resp.StatusCode)
	}
}

// TestHTTPRequestTimeout: a handler outliving RequestTimeout answers 503
// while /healthz (exempt from the timeout wrapper) stays live.
func TestHTTPRequestTimeout(t *testing.T) {
	c, err := NewCoordinator(Config{APF: apf.NewTHash(), Workload: slowWorkload{}, AuditRate: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewObservedHandler(c, ServerOptions{RequestTimeout: 50 * time.Millisecond}))
	defer srv.Close()
	cl := &Client{BaseURL: srv.URL}
	id, err := cl.Register(1)
	if err != nil {
		t.Fatal(err)
	}
	k, err := cl.Next(id)
	if err != nil {
		t.Fatal(err)
	}
	// AuditRate 1 forces a slowWorkload recomputation inside Submit, which
	// outlives the 50ms budget.
	_, err = cl.Submit(id, k, 0)
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("slow submit = %v, want StatusError 503", err)
	}
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz during slow requests: status %d, want 200", resp.StatusCode)
	}
}

// slowWorkload stalls Do long enough to trip a 50ms request timeout.
type slowWorkload struct{}

func (slowWorkload) Name() string { return "slow" }
func (slowWorkload) Do(TaskID) int64 {
	time.Sleep(200 * time.Millisecond)
	return 0
}

// TestHTTPHeartbeat covers the heartbeat endpoint: 200 for an active
// volunteer, 404 for an unknown one, and the typed client path.
func TestHTTPHeartbeat(t *testing.T) {
	srv, _ := newTestServer(t, 0, 1)
	cl := &Client{BaseURL: srv.URL}
	id, err := cl.Register(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Heartbeat(id); err != nil {
		t.Fatalf("Heartbeat(%d): %v", id, err)
	}
	err = cl.Heartbeat(id + 99)
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusNotFound {
		t.Fatalf("Heartbeat(unknown) = %v, want StatusError 404", err)
	}
}

// TestHTTPDegraded: when the journal fails under a live server, mutations
// answer 503, reads and heartbeats answer 200, /readyz reports degraded,
// and the wbc_degraded gauge flips — the read-only posture, end to end.
func TestHTTPDegraded(t *testing.T) {
	c, err := NewCoordinator(Config{
		APF: apf.NewTHash(), Workload: DivisorSum{}, Seed: 9,
		LeaseTTL: time.Minute, Now: func() time.Time { return time.Unix(0, 0) },
	})
	if err != nil {
		t.Fatal(err)
	}
	var ff *flakyLogFile
	j, _, err := OpenJournal(filepath.Join(t.TempDir(), "journal"), c, JournalOptions{
		WrapFile: func(f walog.File) walog.File { ff = &flakyLogFile{File: f}; return ff },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	srv := httptest.NewServer(NewObservedHandler(c, ServerOptions{}))
	defer srv.Close()
	cl := &Client{BaseURL: srv.URL}

	id, err := cl.Register(1)
	if err != nil {
		t.Fatal(err)
	}
	k, err := cl.Next(id)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Submit(id, k, (DivisorSum{}).Do(k)); err != nil {
		t.Fatal(err)
	}

	ff.failSync.Store(true)
	_, err = cl.Register(1)
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("register on degraded server = %v, want StatusError 503", err)
	}
	if _, err := cl.Next(id); !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("next on degraded server = %v, want 503", err)
	}
	// Reads and lease renewal survive the read-only window.
	if got, err := cl.Attribute(k); err != nil || got != id {
		t.Fatalf("attribute on degraded server = %d, %v; want %d", got, err, id)
	}
	if err := cl.Heartbeat(id); err != nil {
		t.Fatalf("heartbeat on degraded server: %v", err)
	}
	if _, err := cl.Metrics(); err != nil {
		t.Fatalf("metrics on degraded server: %v", err)
	}
	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "degraded") {
		t.Fatalf("/readyz = %d %q, want 503 mentioning degraded", resp.StatusCode, body)
	}
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz on degraded server = %d, want 200 (alive, just read-only)", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(prom), "wbc_degraded 1") {
		t.Fatalf("Prometheus exposition missing wbc_degraded 1:\n%s", prom)
	}
}

// TestHTTPDegradedGaugeZero: a healthy journaled server exports
// wbc_degraded 0 — operators alert on the transition.
func TestHTTPDegradedGaugeZero(t *testing.T) {
	c, err := NewCoordinator(Config{APF: apf.NewTHash(), Workload: DivisorSum{}})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewObservedHandler(c, ServerOptions{}))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(prom), "wbc_degraded 0") {
		t.Fatalf("healthy server exposition missing wbc_degraded 0:\n%s", prom)
	}
}
