package wbc

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"pairfn/internal/apf"
)

func newTestServer(t *testing.T, auditRate float64, strikes int) (*httptest.Server, *Coordinator) {
	t.Helper()
	c, err := NewCoordinator(Config{
		APF: apf.NewTHash(), Workload: DivisorSum{},
		AuditRate: auditRate, StrikeLimit: strikes, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHTTPHandler(c))
	t.Cleanup(srv.Close)
	return srv, c
}

// TestHTTPEndToEnd drives the full volunteer protocol over real HTTP:
// register → next → submit loop, attribution query, metrics.
func TestHTTPEndToEnd(t *testing.T) {
	srv, c := newTestServer(t, 0, 1)
	cl := &Client{BaseURL: srv.URL}
	v, err := cl.Register(1.5)
	if err != nil {
		t.Fatal(err)
	}
	owner := map[TaskID]VolunteerID{}
	for i := 0; i < 8; i++ {
		k, err := cl.Next(v)
		if err != nil {
			t.Fatal(err)
		}
		owner[k] = v
		caught, err := cl.Submit(v, k, (DivisorSum{}).Do(k))
		if err != nil || caught {
			t.Fatalf("submit: %v caught=%v", err, caught)
		}
	}
	for k, want := range owner {
		got, err := cl.Attribute(k)
		if err != nil || got != want {
			t.Fatalf("Attribute(%d) = %d, %v; want %d", k, got, err, want)
		}
	}
	if m := c.Metrics(); m.Completed != 8 || m.Registered != 1 {
		t.Errorf("metrics: %+v", m)
	}
}

// TestHTTPConcurrentVolunteers runs a population of HTTP clients on
// goroutines against one server.
func TestHTTPConcurrentVolunteers(t *testing.T) {
	srv, c := newTestServer(t, 0, 1)
	var wg sync.WaitGroup
	const workers, tasks = 6, 10
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := &Client{BaseURL: srv.URL}
			v, err := cl.Register(1)
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < tasks; i++ {
				k, err := cl.Next(v)
				if err != nil {
					errs <- err
					return
				}
				if _, err := cl.Submit(v, k, (DivisorSum{}).Do(k)); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if m := c.Metrics(); m.Completed != workers*tasks || m.Registered != workers {
		t.Errorf("metrics: %+v", m)
	}
}

// TestHTTPBanFlow: a saboteur is banned over the wire; later calls get 403.
func TestHTTPBanFlow(t *testing.T) {
	srv, _ := newTestServer(t, 1.0, 2)
	cl := &Client{BaseURL: srv.URL}
	v, err := cl.Register(1)
	if err != nil {
		t.Fatal(err)
	}
	caughtTotal := 0
	for i := 0; i < 10; i++ {
		k, err := cl.Next(v)
		if err != nil {
			if caughtTotal != 2 {
				t.Fatalf("banned after %d catches, want 2", caughtTotal)
			}
			if !strings.Contains(err.Error(), "403") {
				t.Fatalf("want 403, got %v", err)
			}
			return
		}
		caught, err := cl.Submit(v, k, -1)
		if err != nil {
			t.Fatal(err)
		}
		if caught {
			caughtTotal++
		}
	}
	t.Fatal("saboteur never banned over HTTP")
}

// TestHTTPErrorStatuses exercises each error mapping.
func TestHTTPErrorStatuses(t *testing.T) {
	srv, c := newTestServer(t, 0, 1)
	post := func(path, body string) int {
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	if got := post("/next", `{"volunteer": 999}`); got != http.StatusNotFound {
		t.Errorf("unknown volunteer: %d", got)
	}
	if got := post("/register", `{bad json`); got != http.StatusBadRequest {
		t.Errorf("bad json: %d", got)
	}
	v := c.MustRegister(1)
	k, err := c.NextTask(v)
	if err != nil {
		t.Fatal(err)
	}
	other := c.MustRegister(1)
	body, _ := json.Marshal(submitRequest{Volunteer: other, Task: k, Result: 0})
	if got := post("/submit", string(body)); got != http.StatusConflict {
		t.Errorf("cross submit: %d", got)
	}
	// Attribution of a never-issued task.
	resp, err := http.Get(srv.URL + "/attribute?task=999999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown task: %d", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/attribute?task=abc")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("non-integer task: %d", resp.StatusCode)
	}
	// Departed volunteer → 403.
	if err := c.Depart(other); err != nil {
		t.Fatal(err)
	}
	body, _ = json.Marshal(nextRequest{Volunteer: other})
	if got := post("/next", string(body)); got != http.StatusForbidden {
		t.Errorf("departed volunteer: %d", got)
	}
	// The legacy JSON metrics snapshot stays available via content
	// negotiation (the default /metrics representation is Prometheus
	// text; see observe_test.go).
	m, err := (&Client{BaseURL: srv.URL}).Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.Registered != 2 {
		t.Errorf("metrics over HTTP: %+v", m)
	}
}

// TestHTTPDepartAndInherit covers the front end over the wire: departure
// then a new client inheriting the vacated row.
func TestHTTPDepartAndInherit(t *testing.T) {
	srv, c := newTestServer(t, 0, 1)
	cl := &Client{BaseURL: srv.URL}
	v1, err := cl.Register(1)
	if err != nil {
		t.Fatal(err)
	}
	k1, err := cl.Next(v1) // outstanding at departure
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Depart(v1); err != nil {
		t.Fatal(err)
	}
	v2, err := cl.Register(2)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := cl.Next(v2)
	if err != nil {
		t.Fatal(err)
	}
	if k2 != k1 {
		t.Fatalf("expected reissue of %d, got %d", k1, k2)
	}
	got, err := cl.Attribute(k2)
	if err != nil || got != v2 {
		t.Fatalf("reissued attribution = %d, %v; want %d", got, err, v2)
	}
	_ = c
}
