package wbc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"pairfn/internal/obs"
	"pairfn/internal/walog"
)

// The coordinator journal is the WBC half of the repo's durability story:
// §4's accountability claim is vacuous if a crash forgets who was bound to
// which row, so every acknowledged mutation — Register, Depart, NextTask,
// Submit, Rebalance, lease expiry — is framed into a walog.Log before the
// HTTP ack. Boot recovery loads the newest checkpoint and replays the
// journal tail through the same applyXxxLocked cores the live path uses.
//
// Coordinator ops are not idempotent (Register order determines IDs,
// NextTask order determines sequence numbers), so two mechanisms make
// replay exact:
//
//   - Records are enqueued under c.mu (logLocked), so journal order equals
//     apply order, and each record carries the mutation counter c.applied.
//     Replay skips records at or below the checkpoint's counter — the
//     crash-between-save-and-truncate window — and rejects gaps as
//     divergence instead of guessing.
//   - Submit's audit sampling (an RNG draw plus a workload recomputation)
//     is recorded in the jSubmit record, so replay applies the recorded
//     verdict rather than redrawing.
//
// Replay additionally verifies every derivable output (assigned volunteer
// ID, bound row, issued task index) against the record; a mismatch means
// the checkpoint and journal disagree (wrong file pairing, APF change) and
// recovery fails loudly rather than resurrecting a corrupted ledger.

// Journal record kinds.
const (
	jRegister  = byte(1)
	jDepart    = byte(2)
	jNext      = byte(3)
	jSubmit    = byte(4)
	jRebalance = byte(5)
	jExpire    = byte(6) // lease expiry: an implicit, journaled Depart
)

// journalRec is one coordinator mutation, in wire order.
type journalRec struct {
	Seq     uint64 // mutation counter after this record's apply
	Kind    byte
	ID      VolunteerID
	Speed   float64 // jRegister
	Row     int64   // jRegister: the row the apply must assign
	Task    TaskID  // jNext (verification), jSubmit
	Result  int64   // jSubmit
	Audited bool    // jSubmit: recorded audit draw
	Caught  bool    // jSubmit: recorded audit verdict
}

// encodeJournalRec serializes a record: kind, uvarint seq, varint id,
// then kind-specific fields (speed as 8 fixed bytes — varints mangle
// float bit patterns).
func encodeJournalRec(rec journalRec) []byte {
	buf := make([]byte, 0, 1+4*binary.MaxVarintLen64+9)
	buf = append(buf, rec.Kind)
	buf = binary.AppendUvarint(buf, rec.Seq)
	buf = binary.AppendVarint(buf, int64(rec.ID))
	switch rec.Kind {
	case jRegister:
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(rec.Speed))
		buf = binary.AppendVarint(buf, rec.Row)
	case jNext:
		buf = binary.AppendVarint(buf, int64(rec.Task))
	case jSubmit:
		buf = binary.AppendVarint(buf, int64(rec.Task))
		buf = binary.AppendVarint(buf, rec.Result)
		var flags byte
		if rec.Audited {
			flags |= 1
		}
		if rec.Caught {
			flags |= 2
		}
		buf = append(buf, flags)
	}
	return buf
}

// decodeJournalRec parses one frame payload. Frames are CRC-protected, so
// a failure here means a version mismatch or encoder bug, not bit rot —
// it aborts replay rather than being skipped.
func decodeJournalRec(payload []byte) (journalRec, error) {
	if len(payload) == 0 {
		return journalRec{}, errors.New("empty journal record")
	}
	rec := journalRec{Kind: payload[0]}
	rest := payload[1:]
	seq, n := binary.Uvarint(rest)
	if n <= 0 {
		return journalRec{}, errors.New("journal record: bad seq")
	}
	rec.Seq = seq
	rest = rest[n:]
	id, n := binary.Varint(rest)
	if n <= 0 {
		return journalRec{}, errors.New("journal record: bad volunteer id")
	}
	rec.ID = VolunteerID(id)
	rest = rest[n:]
	switch rec.Kind {
	case jRegister:
		if len(rest) < 8 {
			return journalRec{}, errors.New("journal register record: truncated speed")
		}
		rec.Speed = math.Float64frombits(binary.BigEndian.Uint64(rest))
		rest = rest[8:]
		row, n := binary.Varint(rest)
		if n <= 0 {
			return journalRec{}, errors.New("journal register record: bad row")
		}
		rec.Row = row
		rest = rest[n:]
	case jDepart, jRebalance, jExpire:
		// No extra fields.
	case jNext:
		k, n := binary.Varint(rest)
		if n <= 0 {
			return journalRec{}, errors.New("journal next record: bad task")
		}
		rec.Task = TaskID(k)
		rest = rest[n:]
	case jSubmit:
		k, n := binary.Varint(rest)
		if n <= 0 {
			return journalRec{}, errors.New("journal submit record: bad task")
		}
		rec.Task = TaskID(k)
		rest = rest[n:]
		res, n := binary.Varint(rest)
		if n <= 0 {
			return journalRec{}, errors.New("journal submit record: bad result")
		}
		rec.Result = res
		rest = rest[n:]
		if len(rest) < 1 {
			return journalRec{}, errors.New("journal submit record: missing flags")
		}
		rec.Audited = rest[0]&1 != 0
		rec.Caught = rest[0]&2 != 0
		rest = rest[1:]
	default:
		return journalRec{}, fmt.Errorf("unknown journal record kind %d", rec.Kind)
	}
	if len(rest) != 0 {
		return journalRec{}, fmt.Errorf("journal record kind %d: trailing bytes", rec.Kind)
	}
	return rec, nil
}

// applyJournalRecord replays one record during OpenJournal (under c.mu).
// Sequence gating makes the replay idempotent against a checkpoint that
// was saved after some of these records were logged; every derivable
// output is checked against the record so a checkpoint/journal mismatch
// fails recovery instead of corrupting attribution.
func (c *Coordinator) applyJournalRecord(rec journalRec) error {
	if rec.Seq <= c.applied {
		return nil // already contained in the checkpoint
	}
	if rec.Seq != c.applied+1 {
		return fmt.Errorf("wbc: journal divergence: record seq %d after applied %d",
			rec.Seq, c.applied)
	}
	switch rec.Kind {
	case jRegister:
		id, row := c.applyRegisterLocked(rec.Speed)
		if id != rec.ID || row != rec.Row {
			return fmt.Errorf("wbc: journal divergence: replayed register assigned (vol %d, row %d), journal recorded (vol %d, row %d)",
				id, row, rec.ID, rec.Row)
		}
	case jDepart:
		v, ok := c.vols[rec.ID]
		if !ok || v.departed {
			return fmt.Errorf("wbc: journal divergence: depart of unknown/departed volunteer %d", rec.ID)
		}
		c.applyDepartLocked(v)
	case jNext:
		v, err := c.activeLocked(rec.ID)
		if err != nil {
			return fmt.Errorf("wbc: journal divergence: next: %w", err)
		}
		k, _, err := c.applyNextLocked(v)
		if err != nil {
			return fmt.Errorf("wbc: journal divergence: next: %w", err)
		}
		if k != rec.Task {
			return fmt.Errorf("wbc: journal divergence: replayed next issued task %d, journal recorded %d", k, rec.Task)
		}
	case jSubmit:
		v, err := c.activeLocked(rec.ID)
		if err != nil {
			return fmt.Errorf("wbc: journal divergence: submit: %w", err)
		}
		if !v.out[rec.Task] {
			return fmt.Errorf("wbc: journal divergence: submit of task %d not outstanding for volunteer %d", rec.Task, rec.ID)
		}
		c.applySubmitLocked(v, rec.Task, rec.Result,
			&auditDecision{replay: true, audited: rec.Audited, caught: rec.Caught})
	case jRebalance:
		c.applyRebalanceLocked()
	case jExpire:
		v, ok := c.vols[rec.ID]
		if !ok || v.departed || v.banned {
			return fmt.Errorf("wbc: journal divergence: lease expiry of inactive volunteer %d", rec.ID)
		}
		c.applyExpireLocked(v)
	default:
		return fmt.Errorf("wbc: journal: unknown record kind %d", rec.Kind)
	}
	c.applied = rec.Seq
	return nil
}

// A Journal is the coordinator's write-ahead log: a typed wrapper over
// the shared walog core. Obtain one with OpenJournal.
type Journal struct {
	log *walog.Log
}

// JournalOptions configures OpenJournal.
type JournalOptions struct {
	// SyncWindow is the group-commit fsync window (0 = fsync per
	// mutation; see walog.Options.SyncWindow).
	SyncWindow time.Duration
	// Obs, when non-nil, receives wbc_journal_* metrics.
	Obs *obs.Registry
	// WrapFile wraps the append-side file handle — the fault-injection
	// seam. Replay always reads the raw file.
	WrapFile func(walog.File) walog.File
	// OnDegrade fires exactly once (outside the coordinator lock) when a
	// journal failure degrades the coordinator to read-only.
	OnDegrade func(error)
}

// journalObs adapts walog instrumentation to wbc_journal_* metrics.
// Zero-value handles (nil registry) are no-ops.
type journalObs struct {
	appends, bytes   *obs.Counter
	syncOK, syncFail *obs.Counter
	syncDur          *obs.Histogram
	size             *obs.Gauge
	replayed, torn   *obs.Counter
	checkpoints      *obs.Counter
}

func newJournalObs(r *obs.Registry) journalObs {
	if r == nil {
		return journalObs{}
	}
	r.Help("wbc_journal_appends_total", "Journal records appended.")
	r.Help("wbc_journal_appended_bytes_total", "Journal bytes appended (framed).")
	r.Help("wbc_journal_syncs_total", "Journal fsync attempts, by result.")
	r.Help("wbc_journal_sync_duration_seconds", "Journal fsync latency.")
	r.Help("wbc_journal_size_bytes", "Current journal length.")
	r.Help("wbc_journal_replayed_records_total", "Records replayed at boot.")
	r.Help("wbc_journal_torn_tails_total", "Torn journal tails truncated at boot.")
	r.Help("wbc_journal_checkpoints_total", "Journal checkpoints (log resets).")
	return journalObs{
		appends:     r.Counter("wbc_journal_appends_total"),
		bytes:       r.Counter("wbc_journal_appended_bytes_total"),
		syncOK:      r.Counter("wbc_journal_syncs_total", obs.L("result", "ok")),
		syncFail:    r.Counter("wbc_journal_syncs_total", obs.L("result", "error")),
		syncDur:     r.Histogram("wbc_journal_sync_duration_seconds", obs.DefDurationBuckets),
		size:        r.Gauge("wbc_journal_size_bytes"),
		replayed:    r.Counter("wbc_journal_replayed_records_total"),
		torn:        r.Counter("wbc_journal_torn_tails_total"),
		checkpoints: r.Counter("wbc_journal_checkpoints_total"),
	}
}

func (o journalObs) LogAppend(n int64) {
	o.appends.Inc()
	o.bytes.Add(n)
}

func (o journalObs) LogSync(d time.Duration, err error) {
	if err != nil {
		o.syncFail.Inc()
	} else {
		o.syncOK.Inc()
	}
	o.syncDur.Observe(d.Seconds())
}

func (o journalObs) LogSize(n int64) { o.size.Set(n) }

func (o journalObs) LogReplay(records int, torn bool) {
	o.replayed.Add(int64(records))
	if torn {
		o.torn.Inc()
	}
}

func (o journalObs) LogCheckpoint() { o.checkpoints.Inc() }

// OpenJournal opens (creating if absent) the journal at path, replays its
// records into c — which must have just been built from the matching
// checkpoint (RestoreFile) or be fresh — and attaches the journal so
// every subsequent mutation is logged before it is acknowledged. Returns
// the number of records replayed (including sequence-gated skips).
func OpenJournal(path string, c *Coordinator, opt JournalOptions) (*Journal, int, error) {
	c.mu.Lock()
	l, replayed, err := walog.Open(path, func(payload []byte) error {
		rec, derr := decodeJournalRec(payload)
		if derr != nil {
			return derr
		}
		return c.applyJournalRecord(rec)
	}, walog.Options{
		SyncWindow: opt.SyncWindow,
		Observer:   newJournalObs(opt.Obs),
		WrapFile:   opt.WrapFile,
		Name:       "wbc: journal",
	})
	c.mu.Unlock()
	if err != nil {
		return nil, replayed, err
	}
	j := &Journal{log: l}
	c.AttachJournal(j, opt.OnDegrade)
	return j, replayed, nil
}

// Size returns the current journal length in bytes.
func (j *Journal) Size() int64 { return j.log.Size() }

// Err returns the journal's sticky failure, if any.
func (j *Journal) Err() error { return j.log.Err() }

// Close syncs outstanding records and closes the journal file.
func (j *Journal) Close() error { return j.log.Close() }
