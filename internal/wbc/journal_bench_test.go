package wbc

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"pairfn/internal/apf"
)

// E25 benchmarks: what durability costs. The journal's price is paid per
// acknowledged mutation (one framed append + an fsync, amortized by group
// commit), and at boot (replay wall-clock grows linearly with the journal
// tail). Run with -benchtime to taste:
//
//	go test ./internal/wbc -bench 'JournaledSubmit|JournalRecovery' -benchtime 2s

func benchCoordinator(b *testing.B, syncWindow time.Duration, journaled bool) (*Coordinator, VolunteerID) {
	b.Helper()
	c, err := NewCoordinator(Config{APF: apf.NewTHash(), Workload: Null{}, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	if journaled {
		j, _, err := OpenJournal(filepath.Join(b.TempDir(), "journal"), c, JournalOptions{SyncWindow: syncWindow})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { j.Close() })
	}
	return c, c.MustRegister(1)
}

// BenchmarkJournaledSubmit measures one next+submit round trip under the
// three durability postures: no journal, fsync-per-mutation, and 2ms
// group commit.
func BenchmarkJournaledSubmit(b *testing.B) {
	cases := []struct {
		name      string
		journaled bool
		window    time.Duration
	}{
		{"off", false, 0},
		{"fsync", true, 0},
		{"group2ms", true, 2 * time.Millisecond},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			c, id := benchCoordinator(b, tc.window, tc.journaled)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k, err := c.NextTask(id)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := c.Submit(id, k, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkJournaledSubmitParallel shows what group commit buys under
// load: concurrent volunteers share fsyncs, so per-op cost falls as
// parallelism rises, while fsync-per-op pays the full latency serially.
func BenchmarkJournaledSubmitParallel(b *testing.B) {
	for _, window := range []time.Duration{0, 2 * time.Millisecond} {
		name := "fsync"
		if window > 0 {
			name = "group2ms"
		}
		b.Run(name, func(b *testing.B) {
			c, _ := benchCoordinator(b, window, true)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				id, err := c.Register(1)
				if err != nil {
					b.Fatal(err)
				}
				for pb.Next() {
					k, err := c.NextTask(id)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := c.Submit(id, k, 0); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkJournalRecovery measures boot-time replay wall-clock against
// journal length: build a journal of n mutations once, then repeatedly
// recover a fresh coordinator from it.
func BenchmarkJournalRecovery(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 50_000} {
		b.Run(fmt.Sprintf("records=%d", n), func(b *testing.B) {
			cfg := Config{APF: apf.NewTHash(), Workload: Null{}, Seed: 1}
			dir := b.TempDir()
			path := filepath.Join(dir, "journal")
			{
				c, err := NewCoordinator(cfg)
				if err != nil {
					b.Fatal(err)
				}
				j, _, err := OpenJournal(path, c, JournalOptions{SyncWindow: time.Millisecond})
				if err != nil {
					b.Fatal(err)
				}
				id := c.MustRegister(1)
				for i := 0; i < (n-1)/2; i++ {
					k, err := c.NextTask(id)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := c.Submit(id, k, 0); err != nil {
						b.Fatal(err)
					}
				}
				if err := j.Close(); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c, err := NewCoordinator(cfg)
				if err != nil {
					b.Fatal(err)
				}
				j, _, err := OpenJournal(path, c, JournalOptions{})
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if err := j.Close(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		})
	}
}
