package wbc

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pairfn/internal/apf"
	"pairfn/internal/walog"
)

// snapOf captures c's complete persisted state as a decoded snapshot —
// the equality witness for recovery tests (both sides round-trip through
// gob, so map normalization is symmetric).
func snapOf(t *testing.T, c *Coordinator) coordSnap {
	t.Helper()
	var buf bytes.Buffer
	if err := c.Checkpoint(&buf); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	snap, err := decodeCoordSnap(&buf)
	if err != nil {
		t.Fatalf("decode snapshot: %v", err)
	}
	return snap
}

func requireEqualState(t *testing.T, live, recovered *Coordinator) {
	t.Helper()
	a, b := snapOf(t, live), snapOf(t, recovered)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("recovered state diverges from live state:\nlive:      %+v\nrecovered: %+v", a, b)
	}
}

// TestJournalRecCodec round-trips every record kind through the wire form.
func TestJournalRecCodec(t *testing.T) {
	recs := []journalRec{
		{Seq: 1, Kind: jRegister, ID: 7, Speed: 2.5, Row: 3},
		{Seq: 2, Kind: jRegister, ID: 8, Speed: -0.25, Row: 1 << 40},
		{Seq: 3, Kind: jDepart, ID: 7},
		{Seq: 4, Kind: jNext, ID: 8, Task: 1 << 50},
		{Seq: 5, Kind: jSubmit, ID: 8, Task: 912, Result: -42, Audited: true, Caught: true},
		{Seq: 6, Kind: jSubmit, ID: 8, Task: 913, Result: 0, Audited: true, Caught: false},
		{Seq: 7, Kind: jRebalance},
		{Seq: 1 << 60, Kind: jExpire, ID: 9},
	}
	for _, want := range recs {
		got, err := decodeJournalRec(encodeJournalRec(want))
		if err != nil {
			t.Fatalf("decode(encode(%+v)): %v", want, err)
		}
		if got != want {
			t.Fatalf("round trip: got %+v, want %+v", got, want)
		}
	}
}

// TestJournalRecDecodeErrors: malformed payloads are errors, never panics
// or silent misreads — a decode failure aborts recovery.
func TestJournalRecDecodeErrors(t *testing.T) {
	cases := []struct {
		name    string
		payload []byte
	}{
		{"empty", nil},
		{"unknown kind", []byte{99, 1, 2}},
		{"register truncated speed", encodeJournalRec(journalRec{Kind: jRegister, Seq: 1, ID: 1, Speed: 1, Row: 2})[:5]},
		{"submit missing flags", func() []byte {
			b := encodeJournalRec(journalRec{Kind: jSubmit, Seq: 1, ID: 1, Task: 2, Result: 3})
			return b[:len(b)-1]
		}()},
		{"trailing bytes", append(encodeJournalRec(journalRec{Kind: jDepart, Seq: 1, ID: 1}), 0xFF)},
	}
	for _, tc := range cases {
		if _, err := decodeJournalRec(tc.payload); err == nil {
			t.Errorf("%s: decoded without error", tc.name)
		}
	}
}

// journaled builds a coordinator with an attached journal in dir.
func journaled(t *testing.T, dir string, cfg Config) (*Coordinator, *Journal, string) {
	t.Helper()
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "journal")
	j, _, err := OpenJournal(path, c, JournalOptions{})
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	return c, j, path
}

// TestJournalRecovery: a scripted run — registrations, issuance, honest and
// corrupt submissions (exercising the recorded audit verdicts), a depart —
// replayed from the journal alone reconstructs the exact live state, and
// the recovered coordinator keeps operating.
func TestJournalRecovery(t *testing.T) {
	cfg := Config{APF: apf.NewTHash(), Workload: DivisorSum{}, AuditRate: 0.5, StrikeLimit: 2, Seed: 41}
	live, j, path := journaled(t, t.TempDir(), cfg)

	v1, _ := live.Register(1)
	v2, _ := live.Register(2)
	v3, _ := live.Register(0.5)
	for i := 0; i < 20; i++ {
		for _, v := range []VolunteerID{v1, v2, v3} {
			if live.Banned(v) {
				continue
			}
			k, err := live.NextTask(v)
			if err != nil {
				t.Fatal(err)
			}
			result := (DivisorSum{}).Do(k)
			if v == v3 {
				result++ // v3 lies; the audit RNG will eventually ban it
			}
			if _, err := live.Submit(v, k, result); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := live.NextTask(v1); err != nil {
		t.Fatal(err) // leave one task outstanding across the "crash"
	}
	if err := live.Depart(v2); err != nil {
		t.Fatal(err)
	}
	if err := live.Rebalance(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	recovered, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	j2, replayed, err := OpenJournal(path, recovered, JournalOptions{})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer j2.Close()
	if replayed == 0 {
		t.Fatal("recovery replayed nothing")
	}
	requireEqualState(t, live, recovered)

	// The recovered coordinator is live: registration reuses v2's vacated
	// row, issuance continues without index reuse.
	v4, err := recovered.Register(1)
	if err != nil {
		t.Fatal(err)
	}
	row4, _ := recovered.Row(v4)
	if row4 != 2 {
		t.Fatalf("newcomer row after recovery = %d, want vacated 2", row4)
	}
}

// TestJournalCheckpointCut: SaveCheckpoint truncates the journal under the
// append lock; checkpoint + tail replay equals live state.
func TestJournalCheckpointCut(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ckpt")
	cfg := Config{APF: apf.NewTHash(), Workload: DivisorSum{}, Seed: 5}
	live, j, path := journaled(t, dir, cfg)

	v1, _ := live.Register(1)
	for i := 0; i < 10; i++ {
		k, _ := live.NextTask(v1)
		if _, err := live.Submit(v1, k, (DivisorSum{}).Do(k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := live.SaveCheckpoint(ckpt); err != nil {
		t.Fatal(err)
	}
	if j.Size() != 0 {
		t.Fatalf("journal size after checkpoint = %d, want 0", j.Size())
	}
	// Tail: mutations after the cut live only in the journal.
	v2, _ := live.Register(2)
	k, _ := live.NextTask(v2)
	if _, err := live.Submit(v2, k, (DivisorSum{}).Do(k)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	recovered, err := RestoreFile(ckpt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	j2, replayed, err := OpenJournal(path, recovered, JournalOptions{})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer j2.Close()
	if replayed != 3 { // register + next + submit after the cut
		t.Fatalf("replayed %d tail records, want 3", replayed)
	}
	requireEqualState(t, live, recovered)
}

// TestJournalSeqGating simulates a crash between checkpoint save and
// journal truncation: recovery sees a checkpoint that already contains a
// prefix of the journal, and sequence gating must skip exactly that prefix
// instead of double-applying it.
func TestJournalSeqGating(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ckpt")
	cfg := Config{APF: apf.NewTHash(), Workload: DivisorSum{}, Seed: 6}
	live, j, path := journaled(t, dir, cfg)

	v1, _ := live.Register(1)
	for i := 0; i < 5; i++ {
		k, _ := live.NextTask(v1)
		if _, err := live.Submit(v1, k, (DivisorSum{}).Do(k)); err != nil {
			t.Fatal(err)
		}
	}
	// Save the checkpoint WITHOUT cutting the journal — the torn window.
	if err := writeCheckpointFile(live, ckpt); err != nil {
		t.Fatal(err)
	}
	v2, _ := live.Register(2)
	k, _ := live.NextTask(v2)
	if _, err := live.Submit(v2, k, (DivisorSum{}).Do(k)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	recovered, err := RestoreFile(ckpt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	j2, replayed, err := OpenJournal(path, recovered, JournalOptions{})
	if err != nil {
		t.Fatalf("recovery across torn checkpoint window: %v", err)
	}
	defer j2.Close()
	// Every record is read (the count includes gated skips)…
	if replayed != 14 { // 11 pre-checkpoint + 3 post
		t.Fatalf("replayed %d records, want 14", replayed)
	}
	// …but the pre-checkpoint prefix must not double-apply.
	requireEqualState(t, live, recovered)
}

func writeCheckpointFile(c *Coordinator, path string) error {
	var buf bytes.Buffer
	if err := c.Checkpoint(&buf); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

func appendBytes(path string, p []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		return err
	}
	if _, err := f.Write(p); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// TestJournalTornTail: garbage after the last record is truncated and the
// intact prefix still reconstructs the live state.
func TestJournalTornTail(t *testing.T) {
	cfg := Config{APF: apf.NewTHash(), Workload: DivisorSum{}, Seed: 7}
	live, j, path := journaled(t, t.TempDir(), cfg)
	v1, _ := live.Register(1)
	k, _ := live.NextTask(v1)
	if _, err := live.Submit(v1, k, (DivisorSum{}).Do(k)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := appendBytes(path, []byte{0xBA, 0xD0}); err != nil {
		t.Fatal(err)
	}

	recovered, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	j2, replayed, err := OpenJournal(path, recovered, JournalOptions{})
	if err != nil {
		t.Fatalf("recovery with torn tail: %v", err)
	}
	defer j2.Close()
	if replayed != 3 {
		t.Fatalf("replayed %d records, want 3", replayed)
	}
	requireEqualState(t, live, recovered)
}

// flakyLogFile lets tests flip journal sync failures on while the server
// runs; replay reads the raw file, so recovery is unaffected.
type flakyLogFile struct {
	walog.File
	failSync atomic.Bool
}

var errLogFault = errors.New("injected journal fault")

func (f *flakyLogFile) Sync() error {
	if f.failSync.Load() {
		return errLogFault
	}
	return f.File.Sync()
}

// TestJournalFailureDegrades: a journal sync failure flips the coordinator
// to read-only exactly once — mutations return ErrDegraded, while
// heartbeats, attribution and metrics keep answering.
func TestJournalFailureDegrades(t *testing.T) {
	fixed := time.Unix(1000, 0)
	cfg := Config{
		APF: apf.NewTHash(), Workload: DivisorSum{}, Seed: 8,
		LeaseTTL: time.Minute, Now: func() time.Time { return fixed },
	}
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ff *flakyLogFile
	var degrades atomic.Int32
	j, _, err := OpenJournal(filepath.Join(t.TempDir(), "journal"), c, JournalOptions{
		WrapFile:  func(f walog.File) walog.File { ff = &flakyLogFile{File: f}; return ff },
		OnDegrade: func(error) { degrades.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	id, err := c.Register(1)
	if err != nil {
		t.Fatal(err)
	}
	k, err := c.NextTask(id)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(id, k, (DivisorSum{}).Do(k)); err != nil {
		t.Fatal(err)
	}

	ff.failSync.Store(true)
	if _, err := c.Register(1); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Register during journal failure = %v, want ErrDegraded", err)
	}
	if !c.Degraded() {
		t.Fatal("Degraded() = false after journal failure")
	}
	// Every mutation path is gated…
	if _, err := c.NextTask(id); !errors.Is(err, ErrDegraded) {
		t.Fatalf("NextTask = %v, want ErrDegraded", err)
	}
	if _, err := c.Submit(id, k, 0); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Submit = %v, want ErrDegraded", err)
	}
	if err := c.Depart(id); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Depart = %v, want ErrDegraded", err)
	}
	if err := c.Rebalance(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Rebalance = %v, want ErrDegraded", err)
	}
	if _, err := c.ExpireLeases(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("ExpireLeases = %v, want ErrDegraded", err)
	}
	// …while reads and lease renewal survive the read-only window.
	if err := c.Heartbeat(id); err != nil {
		t.Fatalf("Heartbeat on degraded coordinator = %v, want nil", err)
	}
	if got, err := c.Attribute(k); err != nil || got != id {
		t.Fatalf("Attribute on degraded coordinator = %d, %v; want %d", got, err, id)
	}
	if m := c.Metrics(); m.Completed != 1 {
		t.Fatalf("Metrics.Completed = %d, want 1", m.Completed)
	}
	if n := degrades.Load(); n != 1 {
		t.Fatalf("OnDegrade fired %d times, want exactly 1", n)
	}
}

// TestJournalDivergence: a journal that disagrees with the state it is
// replayed onto — wrong derivable outputs, sequence gaps, unknown actors —
// must abort recovery, not resurrect a corrupted ledger.
func TestJournalDivergence(t *testing.T) {
	writeJournal := func(t *testing.T, recs ...journalRec) string {
		t.Helper()
		path := filepath.Join(t.TempDir(), "journal")
		l, _, err := walog.Open(path, func([]byte) error { return nil }, walog.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			if err := l.Append(encodeJournalRec(r)); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	cases := []struct {
		name string
		recs []journalRec
	}{
		{"register row mismatch", []journalRec{{Seq: 1, Kind: jRegister, ID: 1, Speed: 1, Row: 7}}},
		{"register id mismatch", []journalRec{{Seq: 1, Kind: jRegister, ID: 5, Speed: 1, Row: 1}}},
		{"sequence gap", []journalRec{{Seq: 5, Kind: jRebalance}}},
		{"next for unknown volunteer", []journalRec{{Seq: 1, Kind: jNext, ID: 9, Task: 3}}},
		{"submit of task not outstanding", []journalRec{
			{Seq: 1, Kind: jRegister, ID: 1, Speed: 1, Row: 1},
			{Seq: 2, Kind: jSubmit, ID: 1, Task: 33, Result: 0},
		}},
		{"expiry of unknown volunteer", []journalRec{{Seq: 1, Kind: jExpire, ID: 4}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := writeJournal(t, tc.recs...)
			c, err := NewCoordinator(Config{APF: apf.NewTHash(), Workload: DivisorSum{}})
			if err != nil {
				t.Fatal(err)
			}
			_, _, err = OpenJournal(path, c, JournalOptions{})
			if err == nil || !strings.Contains(err.Error(), "divergence") {
				t.Fatalf("recovery = %v, want divergence error", err)
			}
		})
	}
}

// TestJournalRecoveryProperty is the randomized equivalence check: for
// several seeds, a random interleaving of every coordinator operation —
// churning registrations, honest and corrupt submissions, departs, lease
// expiries under a fake clock, rebalances, mid-run checkpoints — must
// satisfy Restore(checkpoint) + replay(journal tail) ≡ live state.
func TestJournalRecoveryProperty(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			now := time.Unix(0, 0)
			const ttl = time.Second
			cfg := Config{
				APF: apf.NewTHash(), Workload: DivisorSum{},
				AuditRate: 0.3, StrikeLimit: 2, Seed: seed,
				LeaseTTL: ttl, Now: func() time.Time { return now },
			}
			dir := t.TempDir()
			ckpt := filepath.Join(dir, "ckpt")
			live, j, path := journaled(t, dir, cfg)
			saved := false

			out := map[VolunteerID][]TaskID{} // test-side view of outstanding tasks
			var active []VolunteerID
			refresh := func() {
				active = active[:0]
				for _, r := range live.Report() {
					if !r.Banned && !r.Departed {
						active = append(active, r.ID)
					} else {
						delete(out, r.ID)
					}
				}
			}
			tolerable := func(err error) bool {
				return errors.Is(err, ErrBanned) || errors.Is(err, ErrDeparted) ||
					errors.Is(err, ErrUnknownVolunteer) || errors.Is(err, ErrNotIssuedToYou)
			}

			for op := 0; op < 400; op++ {
				refresh()
				switch p := rng.Float64(); {
				case p < 0.15 || len(active) == 0:
					if _, err := live.Register(rng.Float64()*3 + 0.1); err != nil {
						t.Fatalf("op %d register: %v", op, err)
					}
				case p < 0.40:
					id := active[rng.Intn(len(active))]
					k, err := live.NextTask(id)
					if err != nil {
						t.Fatalf("op %d next(%d): %v", op, id, err)
					}
					out[id] = append(out[id], k)
				case p < 0.70:
					id := active[rng.Intn(len(active))]
					ks := out[id]
					if len(ks) == 0 {
						continue
					}
					i := rng.Intn(len(ks))
					k := ks[i]
					out[id] = append(ks[:i], ks[i+1:]...)
					result := (DivisorSum{}).Do(k)
					if rng.Float64() < 0.25 {
						result += 1 + int64(rng.Intn(5)) // a lie, maybe audited
					}
					if _, err := live.Submit(id, k, result); err != nil && !tolerable(err) {
						t.Fatalf("op %d submit(%d, %d): %v", op, id, k, err)
					}
				case p < 0.78:
					id := active[rng.Intn(len(active))]
					if err := live.Heartbeat(id); err != nil && !tolerable(err) {
						t.Fatalf("op %d heartbeat(%d): %v", op, id, err)
					}
				case p < 0.84:
					id := active[rng.Intn(len(active))]
					if err := live.Depart(id); err != nil && !tolerable(err) {
						t.Fatalf("op %d depart(%d): %v", op, id, err)
					}
					delete(out, id)
				case p < 0.92:
					now = now.Add(time.Duration(rng.Int63n(int64(3 * ttl / 2))))
					if _, err := live.ExpireLeases(); err != nil {
						t.Fatalf("op %d expire: %v", op, err)
					}
				case p < 0.97:
					if err := live.Rebalance(); err != nil {
						t.Fatalf("op %d rebalance: %v", op, err)
					}
				default:
					if err := live.SaveCheckpoint(ckpt); err != nil {
						t.Fatalf("op %d checkpoint: %v", op, err)
					}
					saved = true
				}
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}

			var recovered *Coordinator
			var err error
			if saved {
				recovered, err = RestoreFile(ckpt, cfg)
			} else {
				recovered, err = NewCoordinator(cfg)
			}
			if err != nil {
				t.Fatal(err)
			}
			j2, _, err := OpenJournal(path, recovered, JournalOptions{})
			if err != nil {
				t.Fatalf("recovery: %v", err)
			}
			defer j2.Close()
			requireEqualState(t, live, recovered)
		})
	}
}
