package wbc

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pairfn/internal/apf"
)

// fakeClock is a settable lease clock safe for concurrent use (the
// sweeper and race tests read it from other goroutines).
type fakeClock struct{ nanos atomic.Int64 }

func (f *fakeClock) Now() time.Time          { return time.Unix(0, f.nanos.Load()) }
func (f *fakeClock) Advance(d time.Duration) { f.nanos.Add(int64(d)) }

func leasedCoordinator(t *testing.T, ttl time.Duration, clk *fakeClock) *Coordinator {
	t.Helper()
	c, err := NewCoordinator(Config{
		APF: apf.NewTHash(), Workload: DivisorSum{}, Seed: 3,
		LeaseTTL: ttl, Now: clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestLeaseExpiryReclaims is the self-healing contract: a volunteer that
// goes silent past the TTL is implicitly departed, its outstanding tasks
// are reissued to a survivor, and attribution follows the reissue exactly.
func TestLeaseExpiryReclaims(t *testing.T) {
	clk := &fakeClock{}
	ttl := time.Second
	c := leasedCoordinator(t, ttl, clk)
	dead := c.MustRegister(1)
	alive := c.MustRegister(1)
	k, err := c.NextTask(dead)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := c.Attribute(k); got != dead {
		t.Fatalf("Attribute(%d) = %d before expiry, want %d", k, got, dead)
	}

	// The survivor stays in touch; the other volunteer vanishes.
	clk.Advance(ttl / 2)
	if err := c.Heartbeat(alive); err != nil {
		t.Fatal(err)
	}
	clk.Advance(ttl/2 + time.Millisecond)
	n, err := c.ExpireLeases()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("ExpireLeases = %d, want 1 (only the silent volunteer)", n)
	}
	if _, err := c.NextTask(dead); err == nil {
		t.Fatal("expired volunteer can still fetch tasks")
	}
	m := c.Metrics()
	if m.LeaseExpirations != 1 || m.TasksReclaimed != 1 {
		t.Fatalf("metrics = %+v, want 1 expiration and 1 reclaimed task", m)
	}

	// The survivor's next fetch is the reclaimed task, reattributed to it.
	k2, err := c.NextTask(alive)
	if err != nil {
		t.Fatal(err)
	}
	if k2 != k {
		t.Fatalf("survivor fetched %d, want reclaimed %d", k2, k)
	}
	if got, _ := c.Attribute(k); got != alive {
		t.Fatalf("Attribute(%d) = %d after reissue, want %d", k, got, alive)
	}
	// The dead volunteer's late submission bounces: the task is no longer
	// its to answer for.
	if _, err := c.Submit(dead, k, 0); err == nil {
		t.Fatal("expired volunteer's late submit accepted")
	}
	if _, err := c.Submit(alive, k, (DivisorSum{}).Do(k)); err != nil {
		t.Fatalf("reissued task submit: %v", err)
	}
}

// TestLeaseRenewalOnActivity: each protocol op pushes the deadline out, so
// an active volunteer never expires regardless of run length.
func TestLeaseRenewalOnActivity(t *testing.T) {
	clk := &fakeClock{}
	ttl := time.Second
	c := leasedCoordinator(t, ttl, clk)
	id := c.MustRegister(1)
	for i := 0; i < 10; i++ {
		clk.Advance(ttl * 3 / 4)
		var err error
		switch i % 3 {
		case 0:
			err = c.Heartbeat(id)
		case 1:
			_, err = c.NextTask(id)
		default:
			err = c.Heartbeat(id)
		}
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if n, err := c.ExpireLeases(); err != nil || n != 0 {
			t.Fatalf("op %d: ExpireLeases = %d, %v; want 0", i, n, err)
		}
	}
	if c.ActiveLeases() != 1 {
		t.Fatalf("ActiveLeases = %d, want 1", c.ActiveLeases())
	}
}

// TestLeaseDisabled: LeaseTTL 0 means volunteers live until Depart.
func TestLeaseDisabled(t *testing.T) {
	c, err := NewCoordinator(Config{APF: apf.NewTHash(), Workload: DivisorSum{}})
	if err != nil {
		t.Fatal(err)
	}
	id := c.MustRegister(1)
	if n, err := c.ExpireLeases(); err != nil || n != 0 {
		t.Fatalf("ExpireLeases with leasing off = %d, %v", n, err)
	}
	if err := c.Heartbeat(id); err != nil {
		t.Fatalf("Heartbeat with leasing off: %v", err)
	}
	if c.ActiveLeases() != 0 {
		t.Fatalf("ActiveLeases = %d with leasing off, want 0", c.ActiveLeases())
	}
}

// TestLeaseSweeper runs the real background sweeper against a real clock:
// a volunteer that stops heartbeating is expired within a couple of lease
// periods (the ISSUE acceptance bound), without test hooks.
func TestLeaseSweeper(t *testing.T) {
	const ttl = 100 * time.Millisecond
	c, err := NewCoordinator(Config{
		APF: apf.NewTHash(), Workload: DivisorSum{}, LeaseTTL: ttl,
	})
	if err != nil {
		t.Fatal(err)
	}
	id := c.MustRegister(1)
	if _, err := c.NextTask(id); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go c.RunLeaseSweeper(ctx, ttl/4)

	deadline := time.Now().Add(2 * ttl)
	for time.Now().Before(deadline) {
		if c.Metrics().LeaseExpirations == 1 {
			break
		}
		time.Sleep(ttl / 10)
	}
	m := c.Metrics()
	if m.LeaseExpirations != 1 || m.TasksReclaimed != 1 {
		t.Fatalf("after 2 lease periods: metrics = %+v, want the silent volunteer expired with its task reclaimed", m)
	}
}

// TestVotingSubmitVsLeaseExpiryRace hammers Voting with concurrent honest
// workers while a churn goroutine registers doomed volunteers, advances
// the lease clock, and expires them — reclaimed replicas flow to
// survivors mid-vote. Run under -race. The invariants: no logical task
// ever accumulates more than r votes per round (a reclaimed replica is
// handed over, never double-counted), and no accepted result is wrong.
func TestVotingSubmitVsLeaseExpiryRace(t *testing.T) {
	clk := &fakeClock{}
	const ttl = time.Second
	const r = 3
	v, err := NewVoting(Config{
		APF: apf.NewTHash(), Workload: DivisorSum{}, Seed: 11,
		AuditRate: 0, LeaseTTL: ttl, Now: clk.Now,
	}, r)
	if err != nil {
		t.Fatal(err)
	}
	c := v.Coordinator()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			id := c.MustRegister(1)
			for i := 0; i < 150; i++ {
				k, l, err := v.NextTask(id)
				if err != nil {
					// Expired by a clock jump; rejoin and keep computing.
					id = c.MustRegister(1)
					continue
				}
				if _, err := v.Submit(id, k, (DivisorSum{}).Do(TaskID(l))); err != nil {
					id = c.MustRegister(1)
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 25; i++ {
			doomed := c.MustRegister(1)
			if _, _, err := v.NextTask(doomed); err != nil {
				continue
			}
			// The doomed volunteer abandons its replica; everyone who has
			// not renewed after the jump expires with it.
			clk.Advance(2 * ttl)
			if _, err := c.ExpireLeases(); err != nil {
				t.Errorf("ExpireLeases: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	m := v.Metrics()
	if m.AcceptedBad != 0 {
		t.Fatalf("AcceptedBad = %d with all-honest workers, want 0", m.AcceptedBad)
	}
	if m.Decided == 0 {
		t.Fatal("no logical tasks decided; the race test exercised nothing")
	}
	cm := c.Metrics()
	if cm.LeaseExpirations == 0 || cm.TasksReclaimed == 0 {
		t.Fatalf("coordinator metrics = %+v: churn goroutine never caused reclamation", cm)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	for l, votes := range v.votes {
		if len(votes) > r {
			t.Fatalf("logical task %d holds %d votes, more than r=%d: a reclaimed replica double-counted", l, len(votes), r)
		}
	}
}
