package wbc

import (
	"errors"
	"fmt"
	"sort"

	"pairfn/internal/apf"
)

// VolunteerID identifies a registered volunteer. IDs are never reused, even
// when row indices are (accountability outlives departure and banning).
type VolunteerID int64

// ErrUnknownTask reports an attribution query for a task index that was
// never issued.
var ErrUnknownTask = errors.New("wbc: task was never issued")

// A Binding records that from sequence number FromSeq onward (until the
// next binding of the same row), tasks of row Row were assigned to
// volunteer Vol. Bindings are the "added mechanism" §4 says dynamic
// departure/reassignment demands in order to retain accountability: the APF
// alone inverts a task index to ⟨row, seq⟩; the binding history finishes
// the job of naming a volunteer.
type Binding struct {
	Row     int64
	Vol     VolunteerID
	FromSeq int64
}

// Ledger is the accountability ledger: an APF plus, per row, the history of
// volunteer bindings, plus explicit overrides for reissued tasks. It
// answers Attribute(k) in O(time of 𝒯⁻¹) + O(log bindings).
type Ledger struct {
	t apf.APF
	// rows[r] = binding history of row r, in increasing FromSeq order.
	rows map[int64][]Binding
	// nextSeq[r] = next unissued sequence number of row r (starts at 1).
	nextSeq map[int64]int64
	// overrides attributes reissued tasks (issued to one volunteer,
	// abandoned, and re-issued to another) to their actual computer.
	overrides map[TaskID]VolunteerID
	// maxIssued is the largest task index issued — the realized footprint.
	maxIssued TaskID
}

// NewLedger returns an empty ledger over the task-allocation function t.
func NewLedger(t apf.APF) *Ledger {
	return &Ledger{
		t:         t,
		rows:      make(map[int64][]Binding),
		nextSeq:   make(map[int64]int64),
		overrides: make(map[TaskID]VolunteerID),
	}
}

// APF returns the task-allocation function.
func (l *Ledger) APF() apf.APF { return l.t }

// Bind appends a binding: from the row's current sequence position onward,
// its tasks belong to vol.
func (l *Ledger) Bind(row int64, vol VolunteerID) {
	if _, ok := l.nextSeq[row]; !ok {
		l.nextSeq[row] = 1
	}
	l.rows[row] = append(l.rows[row], Binding{Row: row, Vol: vol, FromSeq: l.nextSeq[row]})
}

// Issue allocates the next task of row, returning its index 𝒯(row, seq).
func (l *Ledger) Issue(row int64) (TaskID, error) {
	seq, ok := l.nextSeq[row]
	if !ok || len(l.rows[row]) == 0 {
		return 0, fmt.Errorf("wbc: row %d has no bound volunteer", row)
	}
	z, err := l.t.Encode(row, seq)
	if err != nil {
		return 0, fmt.Errorf("wbc: allocating task (%d, %d): %w", row, seq, err)
	}
	l.nextSeq[row] = seq + 1
	if TaskID(z) > l.maxIssued {
		l.maxIssued = TaskID(z)
	}
	return TaskID(z), nil
}

// Override records that task k, originally attributed via the APF, was
// actually computed by vol (used when abandoned tasks are reissued).
func (l *Ledger) Override(k TaskID, vol VolunteerID) { l.overrides[k] = vol }

// Attribute returns the volunteer accountable for task index k, along with
// the row and sequence number 𝒯⁻¹(k).
func (l *Ledger) Attribute(k TaskID) (VolunteerID, int64, int64, error) {
	if v, ok := l.overrides[k]; ok {
		row, seq, err := l.t.Decode(int64(k))
		if err != nil {
			return 0, 0, 0, err
		}
		return v, row, seq, nil
	}
	row, seq, err := l.t.Decode(int64(k))
	if err != nil {
		return 0, 0, 0, fmt.Errorf("wbc: inverting task %d: %w", k, err)
	}
	hist := l.rows[row]
	if len(hist) == 0 || seq >= l.nextSeq[row] || seq < hist[0].FromSeq {
		return 0, 0, 0, fmt.Errorf("%w: index %d (row %d, seq %d)", ErrUnknownTask, k, row, seq)
	}
	// Last binding with FromSeq ≤ seq.
	i := sort.Search(len(hist), func(i int) bool { return hist[i].FromSeq > seq }) - 1
	return hist[i].Vol, row, seq, nil
}

// Footprint returns the largest task index issued so far — the size of the
// task table a memory manager must provision, which §4 argues is kept small
// by APFs with slowly growing strides.
func (l *Ledger) Footprint() TaskID { return l.maxIssued }

// Issued returns the number of tasks issued on row (seq−1).
func (l *Ledger) Issued(row int64) int64 {
	if s, ok := l.nextSeq[row]; ok {
		return s - 1
	}
	return 0
}

// Bindings returns a copy of row's binding history.
func (l *Ledger) Bindings(row int64) []Binding {
	return append([]Binding(nil), l.rows[row]...)
}
