package wbc

import (
	"log/slog"
	"net/http"
	"strings"
	"time"

	"pairfn/internal/obs"
	"pairfn/internal/srvkit"
)

// This file is the observability face of the WBC website: the
// content-negotiated /metrics endpoint, the /healthz and /readyz probes,
// and the middleware wiring that gives every endpoint request counts,
// status classes, an in-flight gauge and latency histograms. The §4
// accountability scheme is an auditing story; these endpoints are the
// operational half of that audit — who is asking, how fast are we
// answering, is the service draining or degraded.

// DefaultMaxBodyBytes caps volunteer-protocol request bodies. The
// protocol carries a handful of integers; a kilobyte is generous.
const DefaultMaxBodyBytes = 1 << 12

// ServerOptions configures NewObservedHandler.
type ServerOptions struct {
	// Registry is the metrics registry exposed at /metrics and fed by the
	// HTTP middleware. Pass the registry already given to the coordinator
	// (Config.Obs) so HTTP, coordinator and APF metrics share one scrape.
	// Nil gets a fresh private registry.
	Registry *obs.Registry
	// Logger, when non-nil, emits one structured line per request.
	Logger *slog.Logger
	// Ready gates /readyz: a false flag answers 503, telling load
	// balancers to stop routing while in-flight requests drain. Nil means
	// always ready.
	Ready *obs.Flag
	// MaxBodyBytes caps volunteer-protocol request bodies (413 beyond
	// it). 0 uses DefaultMaxBodyBytes; negative disables the cap.
	MaxBodyBytes int64
	// RequestTimeout, when positive, wraps the volunteer-protocol
	// endpoints in http.TimeoutHandler: a handler outliving it answers
	// 503 and the connection is freed. Probes and /metrics are exempt —
	// an operator must be able to scrape a struggling server.
	RequestTimeout time.Duration
	// ReadyDetail, when non-nil and returning non-empty, is appended to
	// the /readyz ready body as "ready (<detail>)" — wbcserver wires the
	// checkpoint scheduler's failure text here.
	ReadyDetail func() string
}

// NewObservedHandler returns the WBC website for c wrapped in
// observability and abuse hardening: all NewHTTPHandler endpoints plus
//
//	GET /metrics   Prometheus text exposition (default) or the legacy
//	               JSON Metrics snapshot when the request prefers
//	               application/json
//	GET /healthz   liveness: always 200 while the process serves
//	GET /readyz    readiness: 200; 503 once opt.Ready is false (drain)
//	               or the coordinator is degraded to read-only
//
// with every request recorded in the registry and optionally logged.
func NewObservedHandler(c *Coordinator, opt ServerOptions) http.Handler {
	reg := opt.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	RegisterCoordinatorMetrics(c, reg)

	maxBody := opt.MaxBodyBytes
	if maxBody == 0 {
		maxBody = DefaultMaxBodyBytes
	}
	api := srvkit.APIStack{
		MaxBodyBytes:   maxBody, // negative → cap disabled
		RequestTimeout: opt.RequestTimeout,
		TimeoutBody:    `{"error":"request timed out"}`,
	}.Wrap(apiMux(c))

	mux := http.NewServeMux()
	mux.Handle("/", api)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		if acceptsJSON(r) {
			writeJSON(w, http.StatusOK, c.Metrics())
			return
		}
		w.Header().Set("Content-Type", obs.PrometheusContentType)
		_ = reg.WritePrometheus(w)
	})
	srvkit.Probes{
		Ready: opt.Ready,
		Degraded: func() (bool, string) {
			return c != nil && c.Degraded(), "read-only (journal failure)"
		},
		Detail: opt.ReadyDetail,
	}.Register(mux)
	return obs.Middleware(obs.MiddlewareConfig{
		Registry:  reg,
		Logger:    opt.Logger,
		PathLabel: pathLabel,
	}, mux)
}

// RegisterCoordinatorMetrics mirrors c's Metrics snapshot into reg as
// wbc_* gauges, refreshed at every scrape. NewObservedHandler calls it;
// headless deployments (cmd/wbcsim's final dump) call it directly.
func RegisterCoordinatorMetrics(c *Coordinator, reg *obs.Registry) {
	if c == nil || reg == nil {
		return
	}
	reg.Help("wbc_volunteers_registered", "Volunteers ever registered.")
	reg.Help("wbc_volunteers_active", "Currently active volunteers.")
	reg.Help("wbc_tasks_issued", "Tasks issued, including reissues.")
	reg.Help("wbc_tasks_completed", "Submissions accepted.")
	reg.Help("wbc_submissions_audited", "Submissions audited inline.")
	reg.Help("wbc_bad_results_caught", "Audited submissions found wrong.")
	reg.Help("wbc_volunteers_banned", "Volunteers banned.")
	reg.Help("wbc_tasks_reissued", "Abandoned tasks reissued.")
	reg.Help("wbc_task_table_footprint", "Largest task index issued (table size).")
	reg.Help("wbc_active_leases", "Volunteers holding a live lease.")
	reg.Help("wbc_lease_expirations_total", "Volunteers expired for not heartbeating.")
	reg.Help("wbc_tasks_reclaimed_total", "Outstanding tasks orphaned by lease expiry.")
	reg.Help("wbc_degraded", "1 when a journal failure has made the coordinator read-only.")
	mirror := []struct {
		g   *obs.Gauge
		val func(Metrics) int64
	}{
		{reg.Gauge("wbc_volunteers_registered"), func(m Metrics) int64 { return m.Registered }},
		{reg.Gauge("wbc_volunteers_active"), func(m Metrics) int64 { return m.Active }},
		{reg.Gauge("wbc_tasks_issued"), func(m Metrics) int64 { return m.Issued }},
		{reg.Gauge("wbc_tasks_completed"), func(m Metrics) int64 { return m.Completed }},
		{reg.Gauge("wbc_submissions_audited"), func(m Metrics) int64 { return m.Audited }},
		{reg.Gauge("wbc_bad_results_caught"), func(m Metrics) int64 { return m.BadCaught }},
		{reg.Gauge("wbc_volunteers_banned"), func(m Metrics) int64 { return m.Bans }},
		{reg.Gauge("wbc_tasks_reissued"), func(m Metrics) int64 { return m.Reissues }},
		{reg.Gauge("wbc_task_table_footprint"), func(m Metrics) int64 { return m.Footprint }},
		{reg.Gauge("wbc_lease_expirations_total"), func(m Metrics) int64 { return m.LeaseExpirations }},
		{reg.Gauge("wbc_tasks_reclaimed_total"), func(m Metrics) int64 { return m.TasksReclaimed }},
	}
	leases := reg.Gauge("wbc_active_leases")
	degraded := reg.Gauge("wbc_degraded")
	reg.OnCollect(func() {
		m := c.Metrics()
		for _, e := range mirror {
			e.g.Set(e.val(m))
		}
		leases.Set(int64(c.ActiveLeases()))
		if c.Degraded() {
			degraded.Set(1)
		} else {
			degraded.Set(0)
		}
	})
}

// acceptsJSON reports whether the client asked for the legacy JSON
// snapshot. Only an explicit application/json (or +json suffix) opts in;
// wildcards and absent Accept headers get Prometheus text, which is what
// scrapers send.
func acceptsJSON(r *http.Request) bool {
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "application/json") || strings.Contains(accept, "+json")
}

// pathLabel bounds metric label cardinality to the fixed endpoint set: an
// internet-facing server must not mint one time series per scanned URL.
func pathLabel(r *http.Request) string {
	switch p := r.URL.Path; p {
	case "/register", "/next", "/submit", "/depart", "/heartbeat",
		"/attribute", "/metrics", "/healthz", "/readyz":
		return p
	default:
		return "other"
	}
}
