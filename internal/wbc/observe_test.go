package wbc

import (
	"bytes"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pairfn/internal/apf"
	"pairfn/internal/obs"
)

// newObservedServer builds a coordinator sharing one registry with its
// observed handler, the production wiring of cmd/wbcserver.
func newObservedServer(t *testing.T, opt ServerOptions) (*httptest.Server, *Coordinator, *obs.Registry) {
	t.Helper()
	reg := opt.Registry
	if reg == nil {
		reg = obs.NewRegistry()
		opt.Registry = reg
	}
	c, err := NewCoordinator(Config{
		APF: apf.NewTHash(), Workload: DivisorSum{},
		AuditRate: 1, StrikeLimit: 2, Seed: 7, Obs: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewObservedHandler(c, opt))
	t.Cleanup(srv.Close)
	return srv, c, reg
}

func get(t *testing.T, url string, accept string) (int, string, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

// TestMetricsContentNegotiation: Prometheus text by default, legacy JSON
// only on an explicit application/json Accept.
func TestMetricsContentNegotiation(t *testing.T) {
	srv, _, _ := newObservedServer(t, ServerOptions{})
	cl := &Client{BaseURL: srv.URL}
	v, err := cl.Register(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Next(v); err != nil {
		t.Fatal(err)
	}

	status, ctype, body := get(t, srv.URL+"/metrics", "")
	if status != http.StatusOK || !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("default /metrics: %d %q", status, ctype)
	}
	for _, want := range []string{
		"# TYPE wbc_coordinator_ops_total counter",
		`wbc_coordinator_ops_total{op="register"} 1`,
		`wbc_coordinator_ops_total{op="next"} 1`,
		`apf_encode_total{apf="T#"}`,
		"# TYPE wbc_coordinator_op_duration_seconds histogram",
		`wbc_coordinator_op_duration_seconds_bucket{op="next",le="+Inf"} 1`,
		"wbc_volunteers_registered 1",
		"wbc_tasks_issued 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("Prometheus exposition missing %q;\n%s", want, body)
		}
	}
	// The scrape itself is middleware-observed: a second scrape must show
	// the first as a 2xx with a latency observation.
	_, _, body = get(t, srv.URL+"/metrics", "")
	for _, want := range []string{
		`http_requests_total{code="2xx",path="/metrics"}`,
		`http_request_duration_seconds_bucket{path="/metrics",le="+Inf"}`,
		"http_in_flight_requests 1", // the in-progress scrape counts itself
	} {
		if !strings.Contains(body, want) {
			t.Errorf("middleware metrics missing %q;\n%s", want, body)
		}
	}

	status, ctype, body = get(t, srv.URL+"/metrics", "application/json")
	if status != http.StatusOK || !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("JSON /metrics: %d %q", status, ctype)
	}
	if !strings.Contains(body, `"Registered":1`) {
		t.Errorf("legacy JSON snapshot missing counters: %s", body)
	}
}

func TestHealthAndReadiness(t *testing.T) {
	ready := obs.NewFlag(true)
	srv, _, _ := newObservedServer(t, ServerOptions{Ready: ready})

	if status, _, body := get(t, srv.URL+"/healthz", ""); status != http.StatusOK || body != "ok\n" {
		t.Errorf("/healthz = %d %q", status, body)
	}
	if status, _, body := get(t, srv.URL+"/readyz", ""); status != http.StatusOK || body != "ready\n" {
		t.Errorf("/readyz = %d %q", status, body)
	}
	ready.Set(false) // draining: load balancer must back off
	if status, _, body := get(t, srv.URL+"/readyz", ""); status != http.StatusServiceUnavailable || body != "draining\n" {
		t.Errorf("/readyz while draining = %d %q", status, body)
	}
	if status, _, _ := get(t, srv.URL+"/healthz", ""); status != http.StatusOK {
		t.Errorf("/healthz must stay 200 while draining, got %d", status)
	}
	ready.Set(true)
	if status, _, _ := get(t, srv.URL+"/readyz", ""); status != http.StatusOK {
		t.Errorf("/readyz after recovery = %d", status)
	}
}

// TestObservedProtocolMetrics drives the volunteer protocol and checks the
// per-endpoint and coordinator instrumentation adds up, including error
// status classes and unknown-path cardinality bounding.
func TestObservedProtocolMetrics(t *testing.T) {
	srv, c, reg := newObservedServer(t, ServerOptions{})
	cl := &Client{BaseURL: srv.URL}
	v, err := cl.Register(1)
	if err != nil {
		t.Fatal(err)
	}
	const n = 5
	for i := 0; i < n; i++ {
		k, err := cl.Next(v)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Submit(v, k, (DivisorSum{}).Do(k)); err != nil {
			t.Fatal(err)
		}
	}
	cl.Submit(v, 999999, 0)             // not issued → 409 (4xx)
	cl.Next(12345)                      // unknown volunteer → 404 (4xx)
	get(t, srv.URL+"/no/such/page", "") // unknown path → "other"

	if got := reg.Counter("wbc_coordinator_ops_total", obs.L("op", "submit")).Value(); got != n {
		t.Errorf("submit ops = %d, want %d", got, n)
	}
	if got := reg.Counter("wbc_coordinator_ops_total", obs.L("op", "audit")).Value(); got != n {
		t.Errorf("audit ops = %d, want %d (AuditRate 1)", got, n)
	}
	if got := reg.Counter("wbc_coordinator_errors_total").Value(); got != 2 {
		t.Errorf("coordinator errors = %d, want 2", got)
	}
	// APF traffic: n fresh issues each encode once; audits recompute via
	// the workload, not the APF, so decodes come only from attribution.
	if got := reg.Counter("apf_encode_total", obs.L("apf", "T#")).Value(); got < n {
		t.Errorf("apf encodes = %d, want ≥ %d", got, n)
	}
	_, _, body := get(t, srv.URL+"/metrics", "")
	for _, want := range []string{
		`http_requests_total{code="2xx",path="/submit"} 5`,
		`http_requests_total{code="4xx",path="/submit"} 1`,
		`http_requests_total{code="4xx",path="/next"} 1`,
		`http_requests_total{code="4xx",path="other"} 1`,
		"wbc_tasks_completed 5",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("missing %q in exposition;\n%s", want, body)
		}
	}
	if m := c.Metrics(); m.Completed != n {
		t.Errorf("coordinator snapshot: %+v", m)
	}
}

func TestObservedHandlerLogsRequests(t *testing.T) {
	var buf bytes.Buffer
	srv, _, _ := newObservedServer(t, ServerOptions{
		Logger: slog.New(slog.NewTextHandler(&buf, nil)),
	})
	cl := &Client{BaseURL: srv.URL}
	if _, err := cl.Register(1); err != nil {
		t.Fatal(err)
	}
	if line := buf.String(); !strings.Contains(line, "path=/register") || !strings.Contains(line, "status=200") {
		t.Errorf("request log missing register line: %q", line)
	}
}

// TestUninstrumentedCoordinatorUnchanged: with Config.Obs nil the
// coordinator must carry no instrumentation (nil handles, raw APF) — the
// zero-cost path used by simulations and benchmarks.
func TestUninstrumentedCoordinatorUnchanged(t *testing.T) {
	c, err := NewCoordinator(Config{APF: apf.NewTHash(), Workload: Null{}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if c.ops.enabled() {
		t.Error("coordObs enabled without a registry")
	}
	if _, ok := c.Ledger().APF().(*apf.Instrumented); ok {
		t.Error("APF wrapped despite nil registry")
	}
	v := c.MustRegister(1)
	if _, err := c.NextTask(v); err != nil {
		t.Fatal(err)
	}
}
