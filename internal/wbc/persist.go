package wbc

import (
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"

	"pairfn/internal/extarray"
)

// Wire forms for gob. Only state is serialized: the APF and Workload are
// code and must be supplied again on restore (checked by APF name, since
// task indices are only meaningful under the allocation function that
// issued them).

type volSnap struct {
	ID        VolunteerID
	Row       int64
	Speed     float64
	Strikes   int
	Banned    bool
	Departed  bool
	Completed int64
	Out       []TaskID
}

type ledgerSnap struct {
	Rows      map[int64][]Binding
	NextSeq   map[int64]int64
	Overrides map[TaskID]VolunteerID
	MaxIssued TaskID
}

type coordSnap struct {
	APFName   string
	NextVol   VolunteerID
	NextRow   int64
	FreeRows  []int64
	Orphans   map[int64][]TaskID
	Vols      []volSnap
	Results   map[TaskID]int64
	Metrics   Metrics
	Applied   uint64 // journal sequence gate (see applyJournalRecord)
	AuditRate float64
	Strikes   int
	Seed      int64
	Ledger    ledgerSnap
}

// Checkpoint serializes the coordinator's complete state — ledger,
// volunteers, outstanding tasks, results, counters — so a restarted server
// can resume with accountability intact. The audit RNG restarts from the
// configured seed (sampling decisions are not part of accountability).
func (c *Coordinator) Checkpoint(w io.Writer) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.checkpointLocked(w)
}

func (c *Coordinator) checkpointLocked(w io.Writer) error {
	snap := coordSnap{
		APFName:   c.cfg.APF.Name(),
		NextVol:   c.nextVol,
		NextRow:   c.nextRow,
		FreeRows:  append([]int64(nil), c.freeRows...),
		Orphans:   c.orphans,
		Results:   c.results,
		Metrics:   c.m,
		Applied:   c.applied,
		AuditRate: c.cfg.AuditRate,
		Strikes:   c.cfg.StrikeLimit,
		Seed:      c.cfg.Seed,
		Ledger: ledgerSnap{
			Rows:      c.ledger.rows,
			NextSeq:   c.ledger.nextSeq,
			Overrides: c.ledger.overrides,
			MaxIssued: c.ledger.maxIssued,
		},
	}
	for _, v := range c.vols {
		vs := volSnap{
			ID: v.id, Row: v.row, Speed: v.speed, Strikes: v.strikes,
			Banned: v.banned, Departed: v.departed, Completed: v.completed,
		}
		for k := range v.out {
			vs.Out = append(vs.Out, k)
		}
		sort.Slice(vs.Out, func(i, j int) bool { return vs.Out[i] < vs.Out[j] })
		snap.Vols = append(snap.Vols, vs)
	}
	sort.Slice(snap.Vols, func(i, j int) bool { return snap.Vols[i].ID < snap.Vols[j].ID })
	return gob.NewEncoder(w).Encode(snap)
}

// SaveCheckpoint atomically writes the coordinator's state to path
// (temp + fsync + rename, via extarray.AtomicWriteFile) and, when a
// journal is attached, truncates the journal under the append lock — the
// tabled checkpoint recipe: anything in the snapshot's consistent cut is
// durable before the log that carried it is cut, and a crash between the
// two is healed by sequence-gated replay.
func (c *Coordinator) SaveCheckpoint(path string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	save := func() error {
		return extarray.AtomicWriteFile(path, func(w io.Writer) error {
			return c.checkpointLocked(w)
		})
	}
	if c.journal != nil {
		return c.journal.log.Checkpoint(save)
	}
	return save()
}

// decodeCoordSnap decodes a checkpoint stream, converting gob panics on
// adversarially corrupt input into errors (mirroring
// extarray.DecodeSnapshot) so a damaged checkpoint is a clean boot
// failure, not a crash loop.
func decodeCoordSnap(r io.Reader) (snap coordSnap, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("corrupt checkpoint stream: %v", p)
		}
	}()
	err = gob.NewDecoder(r).Decode(&snap)
	return snap, err
}

// Restore reconstructs a checkpointed coordinator. cfg must carry the same
// APF (checked by name) and Workload; AuditRate/StrikeLimit/Seed from the
// snapshot take precedence over cfg's. Active volunteers are granted a
// fresh lease (when cfg.LeaseTTL > 0): survivors of the crash get a full
// TTL to reconnect before their tasks are reclaimed.
func Restore(r io.Reader, cfg Config) (*Coordinator, error) {
	snap, err := decodeCoordSnap(r)
	if err != nil {
		return nil, fmt.Errorf("wbc: Restore: %w", err)
	}
	if cfg.APF == nil || cfg.Workload == nil {
		return nil, fmt.Errorf("wbc: Restore: Config.APF and Config.Workload are required")
	}
	if cfg.APF.Name() != snap.APFName {
		return nil, fmt.Errorf("wbc: Restore: checkpoint used APF %q, not %q",
			snap.APFName, cfg.APF.Name())
	}
	cfg.AuditRate = snap.AuditRate
	cfg.StrikeLimit = snap.Strikes
	cfg.Seed = snap.Seed
	c, err := NewCoordinator(cfg)
	if err != nil {
		return nil, err
	}
	c.nextVol = snap.NextVol
	c.nextRow = snap.NextRow
	c.freeRows = snap.FreeRows
	if snap.Orphans != nil {
		c.orphans = snap.Orphans
	}
	if snap.Results != nil {
		c.results = snap.Results
	}
	c.m = snap.Metrics
	c.applied = snap.Applied
	c.ledger.maxIssued = snap.Ledger.MaxIssued
	if snap.Ledger.Rows != nil {
		c.ledger.rows = snap.Ledger.Rows
	}
	if snap.Ledger.NextSeq != nil {
		c.ledger.nextSeq = snap.Ledger.NextSeq
	}
	if snap.Ledger.Overrides != nil {
		c.ledger.overrides = snap.Ledger.Overrides
	}
	for _, vs := range snap.Vols {
		v := &volState{
			id: vs.ID, row: vs.Row, speed: vs.Speed, strikes: vs.Strikes,
			banned: vs.Banned, departed: vs.Departed, completed: vs.Completed,
			out: make(map[TaskID]bool, len(vs.Out)),
		}
		for _, k := range vs.Out {
			v.out[k] = true
		}
		c.vols[vs.ID] = v
		if v.row >= 0 && !v.banned && !v.departed {
			c.rowVol[v.row] = v.id
			c.renewLeaseLocked(v.id)
		}
	}
	// Restart the audit RNG deterministically from the configured seed.
	c.rng = rand.New(rand.NewSource(cfg.Seed))
	return c, nil
}

// RestoreFile is Restore from a checkpoint file on disk.
func RestoreFile(path string, cfg Config) (*Coordinator, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("wbc: restore %s: %w", path, err)
	}
	defer f.Close()
	c, err := Restore(f, cfg)
	if err != nil {
		return nil, fmt.Errorf("wbc: restore %s: %w", path, err)
	}
	return c, nil
}
