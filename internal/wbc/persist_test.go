package wbc

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pairfn/internal/apf"
)

// TestCheckpointRestore runs half a workload, checkpoints, restores into a
// fresh coordinator, finishes the workload there, and verifies attribution
// and issuance continue seamlessly — a restartable server keeps the
// accountability guarantee.
func TestCheckpointRestore(t *testing.T) {
	cfg := Config{
		APF: apf.NewTHash(), Workload: DivisorSum{},
		AuditRate: 0.5, StrikeLimit: 3, Seed: 77,
	}
	c1, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	v1 := c1.MustRegister(1)
	v2 := c1.MustRegister(2)
	owner := map[TaskID]VolunteerID{}
	for i := 0; i < 10; i++ {
		for _, v := range []VolunteerID{v1, v2} {
			k, err := c1.NextTask(v)
			if err != nil {
				t.Fatal(err)
			}
			owner[k] = v
			if _, err := c1.Submit(v, k, (DivisorSum{}).Do(k)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Leave one task outstanding and one volunteer departed at checkpoint.
	pending, err := c1.NextTask(v1)
	if err != nil {
		t.Fatal(err)
	}
	owner[pending] = v1
	if err := c1.Depart(v2); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := c1.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	c2, err := Restore(&buf, Config{APF: apf.NewTHash(), Workload: DivisorSum{}})
	if err != nil {
		t.Fatal(err)
	}

	// State carried over.
	if got, want := c2.Metrics().Completed, c1.Metrics().Completed; got != want {
		t.Fatalf("completed: %d vs %d", got, want)
	}
	for k, want := range owner {
		got, err := c2.Attribute(k)
		if err != nil || got != want {
			t.Fatalf("restored Attribute(%d) = %d, %v; want %d", k, got, err, want)
		}
	}
	// Outstanding task is still owned by v1 and submittable.
	if _, err := c2.Submit(v1, pending, (DivisorSum{}).Do(pending)); err != nil {
		t.Fatalf("submit of outstanding task after restore: %v", err)
	}
	// Departed volunteer stays departed; its row is rebindable.
	if _, err := c2.NextTask(v2); err == nil {
		t.Fatal("departed volunteer active after restore")
	}
	v3 := c2.MustRegister(1)
	row3, _ := c2.Row(v3)
	row2, _ := c1.Row(v2)
	_ = row2 // v2's row is −1 after departure; v3 must take the vacated row 2
	if row3 != 2 {
		t.Fatalf("newcomer row = %d, want vacated 2", row3)
	}
	// Issuance continues where it left off (no index reuse).
	k2, err := c2.NextTask(v1)
	if err != nil {
		t.Fatal(err)
	}
	if _, dup := owner[k2]; dup {
		t.Fatalf("restored coordinator reissued index %d", k2)
	}
	// History reconstructs across the checkpoint boundary.
	hist, err := c2.Ledger().History()
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) < len(owner) {
		t.Fatalf("history %d records < %d issued", len(hist), len(owner))
	}
}

// TestRestoreValidation covers the failure paths.
func TestRestoreValidation(t *testing.T) {
	c, err := NewCoordinator(Config{APF: apf.NewTHash(), Workload: Null{}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	snapshot := buf.Bytes()

	if _, err := Restore(bytes.NewReader(snapshot), Config{APF: apf.NewTStar(), Workload: Null{}}); err == nil ||
		!strings.Contains(err.Error(), "checkpoint used APF") {
		t.Errorf("wrong APF: %v", err)
	}
	if _, err := Restore(bytes.NewReader(snapshot), Config{Workload: Null{}}); err == nil {
		t.Error("missing APF should fail")
	}
	if _, err := Restore(strings.NewReader("garbage"), Config{APF: apf.NewTHash(), Workload: Null{}}); err == nil {
		t.Error("garbage should fail")
	}
}

// checkpointBytes builds a realistic checkpoint stream: volunteers,
// completed work, an outstanding task, a depart — enough structure that
// corruption lands in interesting gob territory.
func checkpointBytes(t *testing.T) []byte {
	t.Helper()
	c, err := NewCoordinator(Config{APF: apf.NewTHash(), Workload: DivisorSum{}, AuditRate: 0.5, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	v1 := c.MustRegister(1)
	v2 := c.MustRegister(2)
	for i := 0; i < 5; i++ {
		k, _ := c.NextTask(v1)
		if _, err := c.Submit(v1, k, (DivisorSum{}).Do(k)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.NextTask(v2); err != nil {
		t.Fatal(err)
	}
	if err := c.Depart(v2); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRestoreCorruptCheckpoint bit-flips every region of a checkpoint and
// truncates it at every length: Restore must never panic — adversarially
// corrupt gob is converted to a clean error (or, for flips that happen to
// decode, a usable coordinator). A damaged checkpoint is a failed boot,
// not a crash loop.
func TestRestoreCorruptCheckpoint(t *testing.T) {
	snapshot := checkpointBytes(t)
	cfg := Config{APF: apf.NewTHash(), Workload: DivisorSum{}}

	step := len(snapshot)/64 + 1
	for off := 0; off < len(snapshot); off += step {
		for _, bit := range []byte{0x01, 0x80} {
			corrupt := append([]byte(nil), snapshot...)
			corrupt[off] ^= bit
			// Must not panic; an error (the common case) must carry the
			// restore context rather than a raw gob panic message.
			c, err := Restore(bytes.NewReader(corrupt), cfg)
			if err == nil && c == nil {
				t.Fatalf("offset %d bit %#x: nil coordinator without error", off, bit)
			}
			if err != nil && !strings.Contains(err.Error(), "Restore") {
				t.Fatalf("offset %d bit %#x: error %q lacks restore context", off, bit, err)
			}
		}
	}
}

// TestRestoreTruncatedCheckpoint: every proper prefix of a checkpoint is a
// clean error, never a panic — the torn-write case for the checkpoint
// file itself (AtomicWriteFile makes this near-impossible in production,
// but boot must tolerate a hand-copied or half-synced file).
func TestRestoreTruncatedCheckpoint(t *testing.T) {
	snapshot := checkpointBytes(t)
	cfg := Config{APF: apf.NewTHash(), Workload: DivisorSum{}}
	step := len(snapshot)/32 + 1
	for n := 0; n < len(snapshot); n += step {
		if _, err := Restore(bytes.NewReader(snapshot[:n]), cfg); err == nil {
			t.Fatalf("prefix of %d/%d bytes restored without error", n, len(snapshot))
		}
	}
}

// TestRestoreFileErrors: the file-level wrapper names the path in every
// failure mode — missing, truncated, corrupt — so a failed boot log line
// tells the operator which artifact to inspect.
func TestRestoreFileErrors(t *testing.T) {
	cfg := Config{APF: apf.NewTHash(), Workload: DivisorSum{}}
	dir := t.TempDir()

	missing := filepath.Join(dir, "absent.ckpt")
	if _, err := RestoreFile(missing, cfg); err == nil || !strings.Contains(err.Error(), missing) {
		t.Fatalf("missing file error %v does not name the path", err)
	}

	snapshot := checkpointBytes(t)
	truncated := filepath.Join(dir, "truncated.ckpt")
	if err := os.WriteFile(truncated, snapshot[:len(snapshot)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreFile(truncated, cfg); err == nil || !strings.Contains(err.Error(), truncated) {
		t.Fatalf("truncated file error %v does not name the path", err)
	}

	good := filepath.Join(dir, "good.ckpt")
	if err := os.WriteFile(good, snapshot, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreFile(good, cfg); err != nil {
		t.Fatalf("intact checkpoint failed to restore: %v", err)
	}
}
