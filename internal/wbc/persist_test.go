package wbc

import (
	"bytes"
	"strings"
	"testing"

	"pairfn/internal/apf"
)

// TestCheckpointRestore runs half a workload, checkpoints, restores into a
// fresh coordinator, finishes the workload there, and verifies attribution
// and issuance continue seamlessly — a restartable server keeps the
// accountability guarantee.
func TestCheckpointRestore(t *testing.T) {
	cfg := Config{
		APF: apf.NewTHash(), Workload: DivisorSum{},
		AuditRate: 0.5, StrikeLimit: 3, Seed: 77,
	}
	c1, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	v1 := c1.Register(1)
	v2 := c1.Register(2)
	owner := map[TaskID]VolunteerID{}
	for i := 0; i < 10; i++ {
		for _, v := range []VolunteerID{v1, v2} {
			k, err := c1.NextTask(v)
			if err != nil {
				t.Fatal(err)
			}
			owner[k] = v
			if _, err := c1.Submit(v, k, (DivisorSum{}).Do(k)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Leave one task outstanding and one volunteer departed at checkpoint.
	pending, err := c1.NextTask(v1)
	if err != nil {
		t.Fatal(err)
	}
	owner[pending] = v1
	if err := c1.Depart(v2); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := c1.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	c2, err := Restore(&buf, Config{APF: apf.NewTHash(), Workload: DivisorSum{}})
	if err != nil {
		t.Fatal(err)
	}

	// State carried over.
	if got, want := c2.Metrics().Completed, c1.Metrics().Completed; got != want {
		t.Fatalf("completed: %d vs %d", got, want)
	}
	for k, want := range owner {
		got, err := c2.Attribute(k)
		if err != nil || got != want {
			t.Fatalf("restored Attribute(%d) = %d, %v; want %d", k, got, err, want)
		}
	}
	// Outstanding task is still owned by v1 and submittable.
	if _, err := c2.Submit(v1, pending, (DivisorSum{}).Do(pending)); err != nil {
		t.Fatalf("submit of outstanding task after restore: %v", err)
	}
	// Departed volunteer stays departed; its row is rebindable.
	if _, err := c2.NextTask(v2); err == nil {
		t.Fatal("departed volunteer active after restore")
	}
	v3 := c2.Register(1)
	row3, _ := c2.Row(v3)
	row2, _ := c1.Row(v2)
	_ = row2 // v2's row is −1 after departure; v3 must take the vacated row 2
	if row3 != 2 {
		t.Fatalf("newcomer row = %d, want vacated 2", row3)
	}
	// Issuance continues where it left off (no index reuse).
	k2, err := c2.NextTask(v1)
	if err != nil {
		t.Fatal(err)
	}
	if _, dup := owner[k2]; dup {
		t.Fatalf("restored coordinator reissued index %d", k2)
	}
	// History reconstructs across the checkpoint boundary.
	hist, err := c2.Ledger().History()
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) < len(owner) {
		t.Fatalf("history %d records < %d issued", len(hist), len(owner))
	}
}

// TestRestoreValidation covers the failure paths.
func TestRestoreValidation(t *testing.T) {
	c, err := NewCoordinator(Config{APF: apf.NewTHash(), Workload: Null{}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	snapshot := buf.Bytes()

	if _, err := Restore(bytes.NewReader(snapshot), Config{APF: apf.NewTStar(), Workload: Null{}}); err == nil ||
		!strings.Contains(err.Error(), "checkpoint used APF") {
		t.Errorf("wrong APF: %v", err)
	}
	if _, err := Restore(bytes.NewReader(snapshot), Config{Workload: Null{}}); err == nil {
		t.Error("missing APF should fail")
	}
	if _, err := Restore(strings.NewReader("garbage"), Config{APF: apf.NewTHash(), Workload: Null{}}); err == nil {
		t.Error("garbage should fail")
	}
}
