package wbc

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"pairfn/internal/apf"
	"pairfn/internal/obs"
)

// ErrBanned reports an operation by a banned volunteer.
var ErrBanned = errors.New("wbc: volunteer is banned")

// ErrDeparted reports an operation by a departed volunteer.
var ErrDeparted = errors.New("wbc: volunteer has departed")

// ErrUnknownVolunteer reports an operation by an unregistered volunteer.
var ErrUnknownVolunteer = errors.New("wbc: unknown volunteer")

// ErrNotIssuedToYou reports a submission for a task the submitter does not
// own.
var ErrNotIssuedToYou = errors.New("wbc: task not issued to this volunteer")

// Config parameterizes a Coordinator.
type Config struct {
	// APF is the task-allocation function 𝒯.
	APF apf.APF
	// Workload defines task semantics; required for auditing.
	Workload Workload
	// AuditRate is the probability a submission is audited by
	// recomputation, in [0, 1].
	AuditRate float64
	// StrikeLimit bans a volunteer at this many confirmed bad results
	// (≥ 1; default 1).
	StrikeLimit int
	// Seed drives the audit sampling.
	Seed int64
	// Obs, when non-nil, receives live operation counters and latency
	// histograms from the coordinator hot paths, and APF encode/decode
	// counters (the task-allocation function is wrapped with
	// apf.Instrument). Nil disables instrumentation at zero cost.
	Obs *obs.Registry
}

// Metrics is a snapshot of coordinator counters.
type Metrics struct {
	Registered int64 // volunteers ever registered
	Active     int64 // currently active volunteers
	Issued     int64 // tasks issued (including reissues)
	Completed  int64 // submissions accepted
	Audited    int64 // submissions audited inline
	BadCaught  int64 // audited submissions found wrong
	Bans       int64 // volunteers banned
	Reissues   int64 // abandoned tasks reissued
	Footprint  int64 // largest task index issued (table size)
}

type volState struct {
	id        VolunteerID
	row       int64 // current row; −1 when unbound (departed/banned)
	speed     float64
	strikes   int
	banned    bool
	departed  bool
	completed int64
	// out is the set of tasks issued to this volunteer and not yet
	// submitted.
	out map[TaskID]bool
}

// Coordinator is the WBC server: it registers volunteers, allocates tasks
// through the ledger's APF, collects results, audits a sample, bans errant
// volunteers, and reassigns the rows (and abandoned tasks) of departed or
// banned volunteers to newcomers — the §4 "front end". Safe for concurrent
// use by volunteer goroutines.
type Coordinator struct {
	mu  sync.Mutex
	cfg Config
	rng *rand.Rand

	ledger  *Ledger
	nextVol VolunteerID
	nextRow int64
	// freeRows are rows vacated by departed/banned volunteers, available
	// for rebinding (smallest first, so newcomers inherit compact rows).
	freeRows []int64
	// orphans are tasks issued to a row's previous owner and never
	// submitted; the row's next owner receives them first.
	orphans map[int64][]TaskID
	vols    map[VolunteerID]*volState
	rowVol  map[int64]VolunteerID
	results map[TaskID]int64
	m       Metrics
	ops     coordObs
}

// coordObs holds the coordinator's live instrumentation handles. All
// fields are nil when Config.Obs is nil; every obs method is a no-op on a
// nil receiver, so the hot paths record unconditionally.
type coordObs struct {
	register, depart, next, submit, auditAll *obs.Counter
	audited, caught, banned, reissued        *obs.Counter
	errs                                     *obs.Counter
	nextLat, submitLat                       *obs.Histogram
}

// newCoordObs registers the coordinator metric families in r (nil r
// yields all-nil no-op handles).
func newCoordObs(r *obs.Registry) coordObs {
	if r == nil {
		return coordObs{}
	}
	r.Help("wbc_coordinator_ops_total", "Coordinator operations, by op.")
	r.Help("wbc_coordinator_errors_total", "Coordinator operations that returned an error, by op.")
	r.Help("wbc_coordinator_op_duration_seconds", "Coordinator operation latency, by op.")
	op := func(name string) *obs.Counter {
		return r.Counter("wbc_coordinator_ops_total", obs.L("op", name))
	}
	return coordObs{
		register: op("register"),
		depart:   op("depart"),
		next:     op("next"),
		submit:   op("submit"),
		auditAll: op("audit_all"),
		audited:  op("audit"),
		caught:   op("caught"),
		banned:   op("ban"),
		reissued: op("reissue"),
		errs:     r.Counter("wbc_coordinator_errors_total"),
		nextLat: r.Histogram("wbc_coordinator_op_duration_seconds",
			obs.DefDurationBuckets, obs.L("op", "next")),
		submitLat: r.Histogram("wbc_coordinator_op_duration_seconds",
			obs.DefDurationBuckets, obs.L("op", "submit")),
	}
}

// enabled reports whether instrumentation is live (used to skip
// time.Now() on the uninstrumented fast path).
func (o *coordObs) enabled() bool { return o.next != nil }

// NewCoordinator returns a Coordinator for the given configuration.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if cfg.APF == nil {
		return nil, fmt.Errorf("wbc: Config.APF is required")
	}
	if cfg.Workload == nil {
		return nil, fmt.Errorf("wbc: Config.Workload is required")
	}
	if cfg.AuditRate < 0 || cfg.AuditRate > 1 {
		return nil, fmt.Errorf("wbc: AuditRate %v outside [0, 1]", cfg.AuditRate)
	}
	if cfg.StrikeLimit < 1 {
		cfg.StrikeLimit = 1
	}
	// With observability on, every 𝒯/𝒯⁻¹ evaluation the ledger performs is
	// counted; Instrument is the identity when cfg.Obs is nil.
	return &Coordinator{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		ledger:  NewLedger(apf.Instrument(cfg.APF, cfg.Obs)),
		ops:     newCoordObs(cfg.Obs),
		nextVol: 1,
		nextRow: 1,
		orphans: make(map[int64][]TaskID),
		vols:    make(map[VolunteerID]*volState),
		rowVol:  make(map[int64]VolunteerID),
		results: make(map[TaskID]int64),
	}, nil
}

// Register adds a volunteer and binds it to a row: the smallest vacated row
// if any (inheriting its orphaned tasks), else the next fresh row. The
// speed hint participates in Rebalance's faster-volunteers-get-smaller-rows
// ordering.
func (c *Coordinator) Register(speed float64) VolunteerID {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.nextVol
	c.nextVol++
	var row int64
	if len(c.freeRows) > 0 {
		sort.Slice(c.freeRows, func(i, j int) bool { return c.freeRows[i] < c.freeRows[j] })
		row = c.freeRows[0]
		c.freeRows = c.freeRows[1:]
	} else {
		row = c.nextRow
		c.nextRow++
	}
	v := &volState{id: id, row: row, speed: speed, out: make(map[TaskID]bool)}
	c.vols[id] = v
	c.rowVol[row] = id
	c.ledger.Bind(row, id)
	c.m.Registered++
	c.m.Active++
	c.ops.register.Inc()
	return id
}

// Depart removes a volunteer; its row and outstanding tasks become
// available to the next arrival.
func (c *Coordinator) Depart(id VolunteerID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.vols[id]
	if !ok {
		c.ops.errs.Inc()
		return fmt.Errorf("%w: %d", ErrUnknownVolunteer, id)
	}
	if v.departed {
		c.ops.errs.Inc()
		return fmt.Errorf("%w: %d", ErrDeparted, id)
	}
	v.departed = true
	c.m.Active--
	c.vacateLocked(v)
	c.ops.depart.Inc()
	return nil
}

// vacateLocked unbinds v from its row, parking outstanding tasks as
// orphans.
func (c *Coordinator) vacateLocked(v *volState) {
	if v.row < 0 {
		return
	}
	row := v.row
	v.row = -1
	delete(c.rowVol, row)
	c.freeRows = append(c.freeRows, row)
	for k := range v.out {
		c.orphans[row] = append(c.orphans[row], k)
	}
	v.out = make(map[TaskID]bool)
}

// NextTask issues the next task for volunteer id: an orphaned task of its
// row if one is pending (reissue), else the fresh index 𝒯(row, seq).
func (c *Coordinator) NextTask(id VolunteerID) (TaskID, error) {
	var start time.Time
	if c.ops.enabled() {
		start = time.Now()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	v, err := c.activeLocked(id)
	if err != nil {
		c.ops.errs.Inc()
		return 0, err
	}
	if q := c.orphans[v.row]; len(q) > 0 {
		k := q[0]
		c.orphans[v.row] = q[1:]
		c.ledger.Override(k, id)
		v.out[k] = true
		c.m.Issued++
		c.m.Reissues++
		c.ops.next.Inc()
		c.ops.reissued.Inc()
		if c.ops.enabled() {
			c.ops.nextLat.Observe(time.Since(start).Seconds())
		}
		return k, nil
	}
	k, err := c.ledger.Issue(v.row)
	if err != nil {
		c.ops.errs.Inc()
		return 0, err
	}
	v.out[k] = true
	c.m.Issued++
	if int64(c.ledger.Footprint()) > c.m.Footprint {
		c.m.Footprint = int64(c.ledger.Footprint())
	}
	c.ops.next.Inc()
	if c.ops.enabled() {
		c.ops.nextLat.Observe(time.Since(start).Seconds())
	}
	return k, nil
}

func (c *Coordinator) activeLocked(id VolunteerID) (*volState, error) {
	v, ok := c.vols[id]
	switch {
	case !ok:
		return nil, fmt.Errorf("%w: %d", ErrUnknownVolunteer, id)
	case v.banned:
		return nil, fmt.Errorf("%w: %d", ErrBanned, id)
	case v.departed:
		return nil, fmt.Errorf("%w: %d", ErrDeparted, id)
	}
	return v, nil
}

// Submit records volunteer id's result for task k. With probability
// AuditRate the result is audited by recomputation; a confirmed bad result
// is a strike, and StrikeLimit strikes ban the volunteer (its row and
// outstanding tasks are recycled). Submit reports whether the submission
// was audited and found bad.
func (c *Coordinator) Submit(id VolunteerID, k TaskID, result int64) (caught bool, err error) {
	var start time.Time
	if c.ops.enabled() {
		start = time.Now()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	v, err := c.activeLocked(id)
	if err != nil {
		c.ops.errs.Inc()
		return false, err
	}
	if !v.out[k] {
		c.ops.errs.Inc()
		return false, fmt.Errorf("%w: volunteer %d, task %d", ErrNotIssuedToYou, id, k)
	}
	delete(v.out, k)
	c.results[k] = result
	v.completed++
	c.m.Completed++
	if c.rng.Float64() < c.cfg.AuditRate {
		c.m.Audited++
		c.ops.audited.Inc()
		if c.cfg.Workload.Do(k) != result {
			c.m.BadCaught++
			c.ops.caught.Inc()
			v.strikes++
			caught = true
			if v.strikes >= c.cfg.StrikeLimit {
				v.banned = true
				c.m.Bans++
				c.m.Active--
				c.vacateLocked(v)
				c.ops.banned.Inc()
			}
		}
	}
	c.ops.submit.Inc()
	if c.ops.enabled() {
		c.ops.submitLat.Observe(time.Since(start).Seconds())
	}
	return caught, nil
}

// Attribute returns the volunteer accountable for task k — the scheme's
// raison d'être: 𝒯⁻¹ plus the binding history answer instantly, with no
// per-task bookkeeping.
func (c *Coordinator) Attribute(k TaskID) (VolunteerID, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, _, _, err := c.ledger.Attribute(k)
	return v, err
}

// AuditAll recomputes every accepted result and returns, per accountable
// volunteer, the list of task indices it answered incorrectly. This is the
// end-of-run accounting a project head would use to assess volunteers.
func (c *Coordinator) AuditAll() (map[VolunteerID][]TaskID, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ops.auditAll.Inc()
	bad := make(map[VolunteerID][]TaskID)
	for k, res := range c.results {
		if c.cfg.Workload.Do(k) == res {
			continue
		}
		v, _, _, err := c.ledger.Attribute(k)
		if err != nil {
			return nil, err
		}
		bad[v] = append(bad[v], k)
	}
	for _, ks := range bad {
		sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	}
	return bad, nil
}

// Rebalance rebinds rows so that faster volunteers (higher measured
// throughput, falling back to the registration speed hint) occupy smaller
// row indices — the ordering §4's front end maintains, which keeps the
// heaviest progressions on the smallest strides. Outstanding tasks follow
// their owners via attribution overrides; past tasks keep their historical
// attribution through the binding records.
func (c *Coordinator) Rebalance() {
	c.mu.Lock()
	defer c.mu.Unlock()
	type slot struct {
		v   *volState
		row int64
	}
	var active []slot
	for _, v := range c.vols {
		if v.row >= 0 && !v.banned && !v.departed {
			active = append(active, slot{v: v, row: v.row})
		}
	}
	if len(active) < 2 {
		return
	}
	rows := make([]int64, len(active))
	for i, s := range active {
		rows[i] = s.row
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i] < rows[j] })
	sort.Slice(active, func(i, j int) bool {
		a, b := active[i].v, active[j].v
		if a.completed != b.completed {
			return a.completed > b.completed
		}
		if a.speed != b.speed {
			return a.speed > b.speed
		}
		return a.id < b.id
	})
	for i, s := range active {
		row := rows[i]
		if s.v.row == row {
			continue
		}
		s.v.row = row
	}
	// Rewrite bindings and ownership after all moves are decided.
	for i, s := range active {
		row := rows[i]
		if cur, ok := c.rowVol[row]; !ok || cur != s.v.id {
			c.rowVol[row] = s.v.id
			c.ledger.Bind(row, s.v.id)
		}
		// In-flight tasks keep correct attribution through the seq-range
		// bindings; nothing to move. Orphans of the row now belong to its
		// new owner by construction.
	}
}

// Row returns the current row of volunteer id (−1 if unbound).
func (c *Coordinator) Row(id VolunteerID) (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.vols[id]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrUnknownVolunteer, id)
	}
	return v.row, nil
}

// Banned reports whether volunteer id is banned.
func (c *Coordinator) Banned(id VolunteerID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.vols[id]
	return ok && v.banned
}

// VolunteerReport is a per-volunteer accounting row.
type VolunteerReport struct {
	ID          VolunteerID
	Row         int64 // current row (−1 if departed/banned)
	Completed   int64
	Strikes     int
	Banned      bool
	Departed    bool
	Outstanding int // tasks fetched but not submitted
}

// Report returns per-volunteer accounting in ID order — the project
// head's roster view.
func (c *Coordinator) Report() []VolunteerReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]VolunteerReport, 0, len(c.vols))
	for _, v := range c.vols {
		out = append(out, VolunteerReport{
			ID: v.id, Row: v.row, Completed: v.completed, Strikes: v.strikes,
			Banned: v.banned, Departed: v.departed, Outstanding: len(v.out),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Metrics returns a snapshot of the counters.
func (c *Coordinator) Metrics() Metrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m
}

// Ledger exposes the accountability ledger (read-mostly; callers must not
// mutate it concurrently with coordinator use).
func (c *Coordinator) Ledger() *Ledger { return c.ledger }

// Results returns a copy of the accepted results table.
func (c *Coordinator) Results() map[TaskID]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[TaskID]int64, len(c.results))
	for k, v := range c.results {
		out[k] = v
	}
	return out
}
