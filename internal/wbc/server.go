package wbc

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"pairfn/internal/apf"
	"pairfn/internal/obs"
	"pairfn/internal/srvkit"
	"pairfn/internal/walog"
)

// ErrBanned reports an operation by a banned volunteer.
var ErrBanned = errors.New("wbc: volunteer is banned")

// ErrDeparted reports an operation by a departed volunteer.
var ErrDeparted = errors.New("wbc: volunteer has departed")

// ErrUnknownVolunteer reports an operation by an unregistered volunteer.
var ErrUnknownVolunteer = errors.New("wbc: unknown volunteer")

// ErrNotIssuedToYou reports a submission for a task the submitter does not
// own.
var ErrNotIssuedToYou = errors.New("wbc: task not issued to this volunteer")

// ErrDegraded reports a mutation rejected because the journal can no
// longer attest durability: the coordinator is read-only. Attribution and
// metrics keep answering; mutations get this (HTTP 503) until an operator
// replaces the journal volume and restarts.
var ErrDegraded = errors.New("wbc: coordinator degraded to read-only (journal failure)")

// Config parameterizes a Coordinator.
type Config struct {
	// APF is the task-allocation function 𝒯.
	APF apf.APF
	// Workload defines task semantics; required for auditing.
	Workload Workload
	// AuditRate is the probability a submission is audited by
	// recomputation, in [0, 1].
	AuditRate float64
	// StrikeLimit bans a volunteer at this many confirmed bad results
	// (≥ 1; default 1).
	StrikeLimit int
	// Seed drives the audit sampling.
	Seed int64
	// LeaseTTL, when positive, is how long a volunteer may stay silent
	// before ExpireLeases treats it as implicitly departed and its
	// outstanding tasks are reclaimed for reissue. Any authenticated
	// activity — Register, NextTask, Submit, Heartbeat — renews the
	// lease. Zero disables leasing (volunteers live until Depart).
	LeaseTTL time.Duration
	// Now overrides the lease clock; nil uses time.Now. Test seam.
	Now func() time.Time
	// Obs, when non-nil, receives live operation counters and latency
	// histograms from the coordinator hot paths, and APF encode/decode
	// counters (the task-allocation function is wrapped with
	// apf.Instrument). Nil disables instrumentation at zero cost.
	Obs *obs.Registry
}

// Metrics is a snapshot of coordinator counters.
type Metrics struct {
	Registered       int64 // volunteers ever registered
	Active           int64 // currently active volunteers
	Issued           int64 // tasks issued (including reissues)
	Completed        int64 // submissions accepted
	Audited          int64 // submissions audited inline
	BadCaught        int64 // audited submissions found wrong
	Bans             int64 // volunteers banned
	Reissues         int64 // abandoned tasks reissued
	Footprint        int64 // largest task index issued (table size)
	LeaseExpirations int64 // volunteers expired for not heartbeating
	TasksReclaimed   int64 // outstanding tasks orphaned by lease expiry
}

type volState struct {
	id        VolunteerID
	row       int64 // current row; −1 when unbound (departed/banned)
	speed     float64
	strikes   int
	banned    bool
	departed  bool
	completed int64
	// out is the set of tasks issued to this volunteer and not yet
	// submitted.
	out map[TaskID]bool
}

// Coordinator is the WBC server: it registers volunteers, allocates tasks
// through the ledger's APF, collects results, audits a sample, bans errant
// volunteers, and reassigns the rows (and abandoned tasks) of departed,
// banned, or lease-expired volunteers — the §4 "front end". Safe for
// concurrent use by volunteer goroutines.
//
// Durability: with a Journal attached (OpenJournal), every mutation is
// applied in memory, framed into the journal under the same critical
// section (so journal order equals apply order — coordinator ops do not
// commute), and acknowledged only after the record is fsynced. The
// mutators are therefore split into applyXxxLocked cores, deterministic
// functions of coordinator state plus the record, shared verbatim by the
// live path and boot-time replay. A journal write failure degrades the
// coordinator to read-only (ErrDegraded) instead of crashing it.
type Coordinator struct {
	mu  sync.Mutex
	cfg Config
	rng *rand.Rand

	ledger  *Ledger
	nextVol VolunteerID
	nextRow int64
	// freeRows are rows vacated by departed/banned volunteers, available
	// for rebinding (smallest first, so newcomers inherit compact rows).
	freeRows []int64
	// orphans are tasks issued to a row's previous owner and never
	// submitted; the row's next owner receives them first, and active
	// volunteers steal from ownerless rows so reclaimed work never
	// starves waiting for a newcomer.
	orphans map[int64][]TaskID
	vols    map[VolunteerID]*volState
	rowVol  map[int64]VolunteerID
	results map[TaskID]int64
	// leases[id] is the deadline by which volunteer id must show
	// activity; only populated when cfg.LeaseTTL > 0.
	leases map[VolunteerID]time.Time
	// applied counts journaled mutations; checkpointed, so replay can
	// skip records the checkpoint already contains (ops are not
	// idempotent — sequence gating is what makes replay-after-a-crash-
	// during-checkpoint safe).
	applied uint64

	journal *Journal
	// deg is the sticky read-only trip machine (shared with tabled via
	// srvkit): a journal failure flips it once and it never un-trips
	// in-process.
	deg *srvkit.Degraded

	m   Metrics
	ops coordObs
}

// coordObs holds the coordinator's live instrumentation handles. All
// fields are nil when Config.Obs is nil; every obs method is a no-op on a
// nil receiver, so the hot paths record unconditionally.
type coordObs struct {
	register, depart, next, submit, auditAll *obs.Counter
	audited, caught, banned, reissued        *obs.Counter
	heartbeat, expired, reclaimed            *obs.Counter
	errs                                     *obs.Counter
	nextLat, submitLat                       *obs.Histogram
}

// newCoordObs registers the coordinator metric families in r (nil r
// yields all-nil no-op handles).
func newCoordObs(r *obs.Registry) coordObs {
	if r == nil {
		return coordObs{}
	}
	r.Help("wbc_coordinator_ops_total", "Coordinator operations, by op.")
	r.Help("wbc_coordinator_errors_total", "Coordinator operations that returned an error, by op.")
	r.Help("wbc_coordinator_op_duration_seconds", "Coordinator operation latency, by op.")
	op := func(name string) *obs.Counter {
		return r.Counter("wbc_coordinator_ops_total", obs.L("op", name))
	}
	return coordObs{
		register:  op("register"),
		depart:    op("depart"),
		next:      op("next"),
		submit:    op("submit"),
		auditAll:  op("audit_all"),
		audited:   op("audit"),
		caught:    op("caught"),
		banned:    op("ban"),
		reissued:  op("reissue"),
		heartbeat: op("heartbeat"),
		expired:   op("lease_expire"),
		reclaimed: op("reclaim"),
		errs:      r.Counter("wbc_coordinator_errors_total"),
		nextLat: r.Histogram("wbc_coordinator_op_duration_seconds",
			obs.DefDurationBuckets, obs.L("op", "next")),
		submitLat: r.Histogram("wbc_coordinator_op_duration_seconds",
			obs.DefDurationBuckets, obs.L("op", "submit")),
	}
}

// enabled reports whether instrumentation is live (used to skip
// time.Now() on the uninstrumented fast path).
func (o *coordObs) enabled() bool { return o.next != nil }

// NewCoordinator returns a Coordinator for the given configuration.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if cfg.APF == nil {
		return nil, fmt.Errorf("wbc: Config.APF is required")
	}
	if cfg.Workload == nil {
		return nil, fmt.Errorf("wbc: Config.Workload is required")
	}
	if cfg.AuditRate < 0 || cfg.AuditRate > 1 {
		return nil, fmt.Errorf("wbc: AuditRate %v outside [0, 1]", cfg.AuditRate)
	}
	if cfg.StrikeLimit < 1 {
		cfg.StrikeLimit = 1
	}
	// With observability on, every 𝒯/𝒯⁻¹ evaluation the ledger performs is
	// counted; Instrument is the identity when cfg.Obs is nil.
	return &Coordinator{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		deg:     srvkit.NewDegraded(srvkit.DegradedConfig{Detail: "read-only (journal failure)"}),
		ledger:  NewLedger(apf.Instrument(cfg.APF, cfg.Obs)),
		ops:     newCoordObs(cfg.Obs),
		nextVol: 1,
		nextRow: 1,
		orphans: make(map[int64][]TaskID),
		vols:    make(map[VolunteerID]*volState),
		rowVol:  make(map[int64]VolunteerID),
		results: make(map[TaskID]int64),
		leases:  make(map[VolunteerID]time.Time),
	}, nil
}

// now is the lease clock.
func (c *Coordinator) now() time.Time {
	if c.cfg.Now != nil {
		return c.cfg.Now()
	}
	return time.Now()
}

// renewLeaseLocked pushes id's activity deadline out by LeaseTTL.
func (c *Coordinator) renewLeaseLocked(id VolunteerID) {
	if c.cfg.LeaseTTL > 0 {
		c.leases[id] = c.now().Add(c.cfg.LeaseTTL)
	}
}

// checkWritableLocked gates every mutation on the durability state.
func (c *Coordinator) checkWritableLocked() error {
	if c.deg.Is() {
		return ErrDegraded
	}
	return nil
}

// logLocked assigns the mutation its sequence number and, when a journal
// is attached, frames the record into it — under c.mu, so the journal's
// record order is exactly the apply order. Durability is awaited after
// c.mu is released (waitDurable); Enqueue itself never syncs, so holding
// the lock across it costs one buffered write.
func (c *Coordinator) logLocked(rec journalRec) walog.Ticket {
	c.applied++
	if c.journal == nil {
		return walog.Ticket{}
	}
	rec.Seq = c.applied
	return c.journal.log.Enqueue(encodeJournalRec(rec))
}

// waitDurable blocks until the mutation's journal record is fsynced. A
// journal failure flips the coordinator into read-only degraded mode
// (once), fires the AttachJournal callback, and surfaces ErrDegraded: the
// mutation is applied in memory but was never acknowledged, matching the
// crash contract (an unacknowledged write may be lost on restart).
func (c *Coordinator) waitDurable(t walog.Ticket) error {
	err := t.Wait()
	if err == nil {
		return nil
	}
	c.deg.Degrade(err)
	return fmt.Errorf("%w: %v", ErrDegraded, err)
}

// AttachJournal wires a journal (normally done by OpenJournal) and the
// callback fired exactly once if the journal fails. The callback runs
// outside the coordinator lock.
func (c *Coordinator) AttachJournal(j *Journal, onDegrade func(error)) {
	c.mu.Lock()
	c.journal = j
	c.mu.Unlock()
	c.deg.OnDegrade(onDegrade)
}

// Degraded reports whether a journal failure has made the coordinator
// read-only.
func (c *Coordinator) Degraded() bool { return c.deg.Is() }

// ActiveLeases returns the number of volunteers holding a live lease.
func (c *Coordinator) ActiveLeases() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.leases)
}

// Register adds a volunteer and binds it to a row: the smallest vacated row
// if any (inheriting its orphaned tasks), else the next fresh row. The
// speed hint participates in Rebalance's faster-volunteers-get-smaller-rows
// ordering. The error is non-nil only on a degraded (read-only)
// coordinator.
func (c *Coordinator) Register(speed float64) (VolunteerID, error) {
	c.mu.Lock()
	if err := c.checkWritableLocked(); err != nil {
		c.mu.Unlock()
		c.ops.errs.Inc()
		return 0, err
	}
	id, row := c.applyRegisterLocked(speed)
	t := c.logLocked(journalRec{Kind: jRegister, ID: id, Speed: speed, Row: row})
	c.ops.register.Inc()
	c.mu.Unlock()
	if err := c.waitDurable(t); err != nil {
		return 0, err
	}
	return id, nil
}

// MustRegister is Register for journal-less coordinators (simulations,
// tests), where registration cannot fail.
func (c *Coordinator) MustRegister(speed float64) VolunteerID {
	id, err := c.Register(speed)
	if err != nil {
		panic(err)
	}
	return id
}

// applyRegisterLocked is the deterministic core of Register, shared by
// the live path and journal replay.
func (c *Coordinator) applyRegisterLocked(speed float64) (VolunteerID, int64) {
	id := c.nextVol
	c.nextVol++
	var row int64
	if len(c.freeRows) > 0 {
		sort.Slice(c.freeRows, func(i, j int) bool { return c.freeRows[i] < c.freeRows[j] })
		row = c.freeRows[0]
		c.freeRows = c.freeRows[1:]
	} else {
		row = c.nextRow
		c.nextRow++
	}
	v := &volState{id: id, row: row, speed: speed, out: make(map[TaskID]bool)}
	c.vols[id] = v
	c.rowVol[row] = id
	c.ledger.Bind(row, id)
	c.m.Registered++
	c.m.Active++
	c.renewLeaseLocked(id)
	return id, row
}

// Depart removes a volunteer; its row and outstanding tasks become
// available to the next arrival.
func (c *Coordinator) Depart(id VolunteerID) error {
	c.mu.Lock()
	if err := c.checkWritableLocked(); err != nil {
		c.mu.Unlock()
		c.ops.errs.Inc()
		return err
	}
	v, ok := c.vols[id]
	if !ok {
		c.mu.Unlock()
		c.ops.errs.Inc()
		return fmt.Errorf("%w: %d", ErrUnknownVolunteer, id)
	}
	if v.departed {
		c.mu.Unlock()
		c.ops.errs.Inc()
		return fmt.Errorf("%w: %d", ErrDeparted, id)
	}
	c.applyDepartLocked(v)
	t := c.logLocked(journalRec{Kind: jDepart, ID: id})
	c.ops.depart.Inc()
	c.mu.Unlock()
	return c.waitDurable(t)
}

// applyDepartLocked is the deterministic core of Depart.
func (c *Coordinator) applyDepartLocked(v *volState) {
	v.departed = true
	c.m.Active--
	c.vacateLocked(v)
}

// vacateLocked unbinds v from its row, parking outstanding tasks as
// orphans (in ascending task order, so replay parks them identically) and
// dropping its lease.
func (c *Coordinator) vacateLocked(v *volState) {
	delete(c.leases, v.id)
	if v.row < 0 {
		return
	}
	row := v.row
	v.row = -1
	delete(c.rowVol, row)
	c.freeRows = append(c.freeRows, row)
	if len(v.out) > 0 {
		ks := make([]TaskID, 0, len(v.out))
		for k := range v.out {
			ks = append(ks, k)
		}
		sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
		c.orphans[row] = append(c.orphans[row], ks...)
	}
	v.out = make(map[TaskID]bool)
}

// NextTask issues the next task for volunteer id: an orphaned task of its
// row if one is pending, else an orphan stolen from the smallest ownerless
// row (reclaimed work from expired volunteers must not starve waiting for
// a newcomer to inherit the row), else the fresh index 𝒯(row, seq).
func (c *Coordinator) NextTask(id VolunteerID) (TaskID, error) {
	var start time.Time
	if c.ops.enabled() {
		start = time.Now()
	}
	c.mu.Lock()
	if err := c.checkWritableLocked(); err != nil {
		c.mu.Unlock()
		c.ops.errs.Inc()
		return 0, err
	}
	v, err := c.activeLocked(id)
	if err != nil {
		c.mu.Unlock()
		c.ops.errs.Inc()
		return 0, err
	}
	k, reissued, err := c.applyNextLocked(v)
	if err != nil {
		c.mu.Unlock()
		c.ops.errs.Inc()
		return 0, err
	}
	t := c.logLocked(journalRec{Kind: jNext, ID: id, Task: k})
	c.ops.next.Inc()
	if reissued {
		c.ops.reissued.Inc()
	}
	if c.ops.enabled() {
		c.ops.nextLat.Observe(time.Since(start).Seconds())
	}
	c.mu.Unlock()
	if err := c.waitDurable(t); err != nil {
		return 0, err
	}
	return k, nil
}

// applyNextLocked is the deterministic core of NextTask. An error means
// no state was mutated (Ledger.Issue mutates only on success).
func (c *Coordinator) applyNextLocked(v *volState) (TaskID, bool, error) {
	if k, ok := c.takeOrphanLocked(v.row); ok {
		c.issueReissueLocked(v, k)
		return k, true, nil
	}
	if row, ok := c.unownedOrphanRowLocked(); ok {
		k, _ := c.takeOrphanLocked(row)
		c.issueReissueLocked(v, k)
		return k, true, nil
	}
	k, err := c.ledger.Issue(v.row)
	if err != nil {
		return 0, false, err
	}
	v.out[k] = true
	c.m.Issued++
	if int64(c.ledger.Footprint()) > c.m.Footprint {
		c.m.Footprint = int64(c.ledger.Footprint())
	}
	c.renewLeaseLocked(v.id)
	return k, false, nil
}

// takeOrphanLocked pops the head of row's orphan queue, deleting the
// queue when it empties (so ownerless-row scans and state snapshots never
// see ghost entries).
func (c *Coordinator) takeOrphanLocked(row int64) (TaskID, bool) {
	q := c.orphans[row]
	if len(q) == 0 {
		return 0, false
	}
	k := q[0]
	if len(q) == 1 {
		delete(c.orphans, row)
	} else {
		c.orphans[row] = q[1:]
	}
	return k, true
}

// unownedOrphanRowLocked returns the smallest row holding orphans but no
// current owner — the deterministic steal order.
func (c *Coordinator) unownedOrphanRowLocked() (int64, bool) {
	var best int64
	found := false
	for row, q := range c.orphans {
		if len(q) == 0 {
			continue
		}
		if _, owned := c.rowVol[row]; owned {
			continue
		}
		if !found || row < best {
			best, found = row, true
		}
	}
	return best, found
}

// issueReissueLocked hands orphan k to v with an attribution override.
func (c *Coordinator) issueReissueLocked(v *volState, k TaskID) {
	c.ledger.Override(k, v.id)
	v.out[k] = true
	c.m.Issued++
	c.m.Reissues++
	c.renewLeaseLocked(v.id)
}

func (c *Coordinator) activeLocked(id VolunteerID) (*volState, error) {
	v, ok := c.vols[id]
	switch {
	case !ok:
		return nil, fmt.Errorf("%w: %d", ErrUnknownVolunteer, id)
	case v.banned:
		return nil, fmt.Errorf("%w: %d", ErrBanned, id)
	case v.departed:
		return nil, fmt.Errorf("%w: %d", ErrDeparted, id)
	}
	return v, nil
}

// auditDecision carries Submit's audit sampling outcome. On the live path
// the RNG is drawn and the fields are filled in for journaling; on replay
// the recorded fields are used verbatim, so recovery never redraws the
// RNG or recomputes the workload and converges to the exact live state.
type auditDecision struct {
	replay  bool
	audited bool
	caught  bool
}

// Submit records volunteer id's result for task k. With probability
// AuditRate the result is audited by recomputation; a confirmed bad result
// is a strike, and StrikeLimit strikes ban the volunteer (its row and
// outstanding tasks are recycled). Submit reports whether the submission
// was audited and found bad.
func (c *Coordinator) Submit(id VolunteerID, k TaskID, result int64) (caught bool, err error) {
	var start time.Time
	if c.ops.enabled() {
		start = time.Now()
	}
	c.mu.Lock()
	if err := c.checkWritableLocked(); err != nil {
		c.mu.Unlock()
		c.ops.errs.Inc()
		return false, err
	}
	v, err := c.activeLocked(id)
	if err != nil {
		c.mu.Unlock()
		c.ops.errs.Inc()
		return false, err
	}
	if !v.out[k] {
		c.mu.Unlock()
		c.ops.errs.Inc()
		return false, fmt.Errorf("%w: volunteer %d, task %d", ErrNotIssuedToYou, id, k)
	}
	var d auditDecision
	caught = c.applySubmitLocked(v, k, result, &d)
	t := c.logLocked(journalRec{
		Kind: jSubmit, ID: id, Task: k, Result: result,
		Audited: d.audited, Caught: d.caught,
	})
	c.ops.submit.Inc()
	if d.audited {
		c.ops.audited.Inc()
	}
	if d.caught {
		c.ops.caught.Inc()
	}
	if v.banned {
		c.ops.banned.Inc()
	}
	if c.ops.enabled() {
		c.ops.submitLat.Observe(time.Since(start).Seconds())
	}
	c.mu.Unlock()
	if werr := c.waitDurable(t); werr != nil {
		return caught, werr
	}
	return caught, nil
}

// applySubmitLocked is the deterministic core of Submit: given the audit
// decision (drawn live, recorded on replay) the strike/ban consequences
// are a pure function of coordinator state.
func (c *Coordinator) applySubmitLocked(v *volState, k TaskID, result int64, d *auditDecision) (caught bool) {
	delete(v.out, k)
	c.results[k] = result
	v.completed++
	c.m.Completed++
	c.renewLeaseLocked(v.id)
	if !d.replay {
		// The draw happens exactly here so journal-less coordinators keep
		// the historical RNG stream (seeded sims and tests pin it).
		d.audited = c.rng.Float64() < c.cfg.AuditRate
		if d.audited {
			d.caught = c.cfg.Workload.Do(k) != result
		}
	}
	if d.audited {
		c.m.Audited++
		if d.caught {
			c.m.BadCaught++
			v.strikes++
			caught = true
			if v.strikes >= c.cfg.StrikeLimit {
				v.banned = true
				c.m.Bans++
				c.m.Active--
				c.vacateLocked(v)
			}
		}
	}
	return caught
}

// Heartbeat renews volunteer id's lease without any other effect. It is
// not journaled (lease deadlines are soft state, re-granted on restore)
// and is allowed on a degraded coordinator, so volunteers survive a
// read-only window without being expired.
func (c *Coordinator) Heartbeat(id VolunteerID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.activeLocked(id); err != nil {
		c.ops.errs.Inc()
		return err
	}
	c.renewLeaseLocked(id)
	c.ops.heartbeat.Inc()
	return nil
}

// ExpireLeases scans for volunteers whose lease deadline has passed and
// applies an implicit, journaled Depart to each: the row is vacated, its
// outstanding tasks orphaned for reissue, and attribution history kept
// intact. Returns the number of volunteers expired. A no-op when leasing
// is disabled.
func (c *Coordinator) ExpireLeases() (int, error) {
	c.mu.Lock()
	if c.cfg.LeaseTTL <= 0 {
		c.mu.Unlock()
		return 0, nil
	}
	if err := c.checkWritableLocked(); err != nil {
		c.mu.Unlock()
		return 0, err
	}
	now := c.now()
	var expired []VolunteerID
	for id, deadline := range c.leases {
		if !now.Before(deadline) {
			expired = append(expired, id)
		}
	}
	sort.Slice(expired, func(i, j int) bool { return expired[i] < expired[j] })
	var tickets []walog.Ticket
	for _, id := range expired {
		v, ok := c.vols[id]
		if !ok || v.departed || v.banned {
			delete(c.leases, id) // stale entry; vacate already dropped state
			continue
		}
		reclaimed := len(v.out)
		c.applyExpireLocked(v)
		tickets = append(tickets, c.logLocked(journalRec{Kind: jExpire, ID: id}))
		c.ops.expired.Inc()
		c.ops.reclaimed.Add(int64(reclaimed))
	}
	c.mu.Unlock()
	for _, t := range tickets {
		if err := c.waitDurable(t); err != nil {
			return len(tickets), err
		}
	}
	return len(tickets), nil
}

// applyExpireLocked is the deterministic core of a lease expiry: an
// implicit Depart plus reclamation accounting.
func (c *Coordinator) applyExpireLocked(v *volState) {
	v.departed = true
	c.m.Active--
	c.m.LeaseExpirations++
	c.m.TasksReclaimed += int64(len(v.out))
	c.vacateLocked(v)
}

// RunLeaseSweeper expires overdue leases every interval until ctx is
// done. Run it in its own goroutine; a degraded coordinator makes the
// sweep a no-op (expiry is a journaled mutation) without stopping the
// loop, so recovery semantics stay uniform.
func (c *Coordinator) RunLeaseSweeper(ctx context.Context, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			_, _ = c.ExpireLeases()
		}
	}
}

// Attribute returns the volunteer accountable for task k — the scheme's
// raison d'être: 𝒯⁻¹ plus the binding history answer instantly, with no
// per-task bookkeeping.
func (c *Coordinator) Attribute(k TaskID) (VolunteerID, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, _, _, err := c.ledger.Attribute(k)
	return v, err
}

// AuditAll recomputes every accepted result and returns, per accountable
// volunteer, the list of task indices it answered incorrectly. This is the
// end-of-run accounting a project head would use to assess volunteers.
func (c *Coordinator) AuditAll() (map[VolunteerID][]TaskID, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ops.auditAll.Inc()
	bad := make(map[VolunteerID][]TaskID)
	for k, res := range c.results {
		if c.cfg.Workload.Do(k) == res {
			continue
		}
		v, _, _, err := c.ledger.Attribute(k)
		if err != nil {
			return nil, err
		}
		bad[v] = append(bad[v], k)
	}
	for _, ks := range bad {
		sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	}
	return bad, nil
}

// Rebalance rebinds rows so that faster volunteers (higher measured
// throughput, falling back to the registration speed hint) occupy smaller
// row indices — the ordering §4's front end maintains, which keeps the
// heaviest progressions on the smallest strides. Outstanding tasks follow
// their owners via attribution overrides; past tasks keep their historical
// attribution through the binding records. The error is non-nil only on a
// degraded coordinator.
func (c *Coordinator) Rebalance() error {
	c.mu.Lock()
	if err := c.checkWritableLocked(); err != nil {
		c.mu.Unlock()
		c.ops.errs.Inc()
		return err
	}
	var t walog.Ticket
	if c.applyRebalanceLocked() {
		t = c.logLocked(journalRec{Kind: jRebalance})
	}
	c.mu.Unlock()
	return c.waitDurable(t)
}

// applyRebalanceLocked is the deterministic core of Rebalance (map
// iteration feeds a total-order sort, so the outcome is a pure function
// of state). It reports whether any row assignment changed — a no-op
// rebalance is not journaled.
func (c *Coordinator) applyRebalanceLocked() bool {
	type slot struct {
		v   *volState
		row int64
	}
	var active []slot
	for _, v := range c.vols {
		if v.row >= 0 && !v.banned && !v.departed {
			active = append(active, slot{v: v, row: v.row})
		}
	}
	if len(active) < 2 {
		return false
	}
	rows := make([]int64, len(active))
	for i, s := range active {
		rows[i] = s.row
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i] < rows[j] })
	sort.Slice(active, func(i, j int) bool {
		a, b := active[i].v, active[j].v
		if a.completed != b.completed {
			return a.completed > b.completed
		}
		if a.speed != b.speed {
			return a.speed > b.speed
		}
		return a.id < b.id
	})
	changed := false
	for i, s := range active {
		row := rows[i]
		if s.v.row == row {
			continue
		}
		s.v.row = row
		changed = true
	}
	if !changed {
		return false
	}
	// Rewrite bindings and ownership after all moves are decided.
	for i, s := range active {
		row := rows[i]
		if cur, ok := c.rowVol[row]; !ok || cur != s.v.id {
			c.rowVol[row] = s.v.id
			c.ledger.Bind(row, s.v.id)
		}
		// In-flight tasks keep correct attribution through the seq-range
		// bindings; nothing to move. Orphans of the row now belong to its
		// new owner by construction.
	}
	return true
}

// Row returns the current row of volunteer id (−1 if unbound).
func (c *Coordinator) Row(id VolunteerID) (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.vols[id]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrUnknownVolunteer, id)
	}
	return v.row, nil
}

// Banned reports whether volunteer id is banned.
func (c *Coordinator) Banned(id VolunteerID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.vols[id]
	return ok && v.banned
}

// VolunteerReport is a per-volunteer accounting row.
type VolunteerReport struct {
	ID          VolunteerID
	Row         int64 // current row (−1 if departed/banned)
	Completed   int64
	Strikes     int
	Banned      bool
	Departed    bool
	Outstanding int // tasks fetched but not submitted
}

// Report returns per-volunteer accounting in ID order — the project
// head's roster view.
func (c *Coordinator) Report() []VolunteerReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]VolunteerReport, 0, len(c.vols))
	for _, v := range c.vols {
		out = append(out, VolunteerReport{
			ID: v.id, Row: v.row, Completed: v.completed, Strikes: v.strikes,
			Banned: v.banned, Departed: v.departed, Outstanding: len(v.out),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Metrics returns a snapshot of the counters.
func (c *Coordinator) Metrics() Metrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m
}

// Ledger exposes the accountability ledger (read-mostly; callers must not
// mutate it concurrently with coordinator use).
func (c *Coordinator) Ledger() *Ledger { return c.ledger }

// Results returns a copy of the accepted results table.
func (c *Coordinator) Results() map[TaskID]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[TaskID]int64, len(c.results))
	for k, v := range c.results {
		out[k] = v
	}
	return out
}
