package wbc

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Profile describes a simulated volunteer population segment.
type Profile struct {
	// Name labels the segment in reports.
	Name string
	// Count is the number of volunteers with this profile.
	Count int
	// ErrorRate is the probability each submitted result is corrupted
	// (0 = honest, small = careless, large = malicious).
	ErrorRate float64
	// Tasks is how many tasks each volunteer computes before stopping.
	Tasks int
	// DepartAfter, if > 0, makes the volunteer deregister after that many
	// tasks (simulating churn); a replacement volunteer with the same
	// profile registers in its place and inherits the vacated row.
	DepartAfter int
	// Speed is the front end's speed hint (higher = faster volunteer).
	Speed float64
}

// SimConfig parameterizes a simulation run.
type SimConfig struct {
	Coordinator Config
	Profiles    []Profile
	// RebalanceEvery triggers a front-end rebalance after every that many
	// completed tasks across the population (0 = never).
	RebalanceEvery int
	// Seed drives volunteer randomness (distinct from the audit seed).
	Seed int64
}

// SimResult summarizes a simulation run.
type SimResult struct {
	Metrics Metrics
	// Corrupted is the ground truth: for each volunteer, the set of task
	// indices whose submitted result it deliberately corrupted.
	Corrupted map[VolunteerID]map[TaskID]bool
	// BadByVolunteer is the coordinator's end-of-run full audit: per
	// accountable volunteer, the bad task indices it is charged with.
	BadByVolunteer map[VolunteerID][]TaskID
	// AttributionErrors counts bad results charged to the wrong volunteer
	// (0 in a correct implementation).
	AttributionErrors int
	// Banned lists banned volunteers in ID order.
	Banned []VolunteerID
}

// volunteerRun drives one volunteer through its task loop. It is executed
// on its own goroutine; all coordination happens inside the Coordinator.
func volunteerRun(c *Coordinator, p Profile, rng *rand.Rand, truth map[TaskID]bool) (VolunteerID, []VolunteerID) {
	id := c.MustRegister(p.Speed)
	ids := []VolunteerID{id}
	done := 0
	sinceArrival := 0
	for done < p.Tasks {
		k, err := c.NextTask(id)
		if err != nil {
			// Banned mid-run (or raced with a reshape): stop this identity.
			break
		}
		result := c.cfg.Workload.Do(k)
		if rng.Float64() < p.ErrorRate {
			result++ // corrupt deterministically detectably
			truth[k] = true
		}
		if _, err := c.Submit(id, k, result); err != nil {
			break
		}
		done++
		sinceArrival++
		if p.DepartAfter > 0 && sinceArrival >= p.DepartAfter && done < p.Tasks {
			// Churn: depart and re-register as a fresh volunteer that
			// inherits a vacated row (and any orphaned tasks).
			if err := c.Depart(id); err != nil {
				break
			}
			id = c.MustRegister(p.Speed)
			ids = append(ids, id)
			sinceArrival = 0
		}
	}
	return id, ids
}

// Simulate runs the volunteer population against a fresh Coordinator and
// returns the full accounting. Volunteers run concurrently (one goroutine
// each); the result's invariants (attribution correctness, footprint
// bounds) are schedule-independent.
func Simulate(cfg SimConfig) (*SimResult, *Coordinator, error) {
	c, err := NewCoordinator(cfg.Coordinator)
	if err != nil {
		return nil, nil, err
	}
	type volOutcome struct {
		ids   []VolunteerID
		truth map[TaskID]bool
	}
	var total int
	for _, p := range cfg.Profiles {
		total += p.Count
	}
	outcomes := make([]volOutcome, total)
	var wg sync.WaitGroup
	// Mid-flight front-end rebalancing: a monitor goroutine reorders rows
	// by throughput every RebalanceEvery completions while volunteers are
	// still running — attribution must survive it (the tests assert zero
	// attribution errors under this churn).
	stopRebalance := make(chan struct{})
	var rebalanceWG sync.WaitGroup
	if cfg.RebalanceEvery > 0 {
		rebalanceWG.Add(1)
		go func() {
			defer rebalanceWG.Done()
			last := int64(0)
			for {
				select {
				case <-stopRebalance:
					return
				default:
				}
				if done := c.Metrics().Completed; done-last >= int64(cfg.RebalanceEvery) {
					c.Rebalance()
					last = done
				}
				time.Sleep(200 * time.Microsecond)
			}
		}()
	}
	idx := 0
	for _, p := range cfg.Profiles {
		for i := 0; i < p.Count; i++ {
			p := p
			slot := idx
			seed := cfg.Seed + int64(slot)*0x9E3779B9
			idx++
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				truth := make(map[TaskID]bool)
				_, ids := volunteerRun(c, p, rng, truth)
				outcomes[slot] = volOutcome{ids: ids, truth: truth}
			}()
		}
	}
	wg.Wait()
	close(stopRebalance)
	rebalanceWG.Wait()
	if cfg.RebalanceEvery > 0 {
		c.Rebalance()
	}

	res := &SimResult{Corrupted: make(map[VolunteerID]map[TaskID]bool)}
	res.Metrics = c.Metrics()
	res.BadByVolunteer, err = c.AuditAll()
	if err != nil {
		return nil, nil, err
	}
	// Assemble ground truth per volunteer identity: a corrupted task
	// belongs to whichever of the volunteer's identities fetched it; the
	// coordinator's Attribute answers that, so cross-check against the
	// identity set instead.
	for _, o := range outcomes {
		for _, id := range o.ids {
			if res.Corrupted[id] == nil {
				res.Corrupted[id] = make(map[TaskID]bool)
			}
		}
	}
	charged := make(map[TaskID]VolunteerID)
	for v, ks := range res.BadByVolunteer {
		for _, k := range ks {
			charged[k] = v
		}
	}
	for _, o := range outcomes {
		idset := make(map[VolunteerID]bool, len(o.ids))
		for _, id := range o.ids {
			idset[id] = true
		}
		for k := range o.truth {
			v, ok := charged[k]
			if !ok || !idset[v] {
				res.AttributionErrors++
				continue
			}
			res.Corrupted[v][k] = true
		}
	}
	// Any charged task not in some volunteer's truth set is also an
	// attribution error (a false charge).
	for k, v := range charged {
		if !res.Corrupted[v][k] {
			res.AttributionErrors++
		}
	}
	for id := range res.Corrupted {
		if c.Banned(id) {
			res.Banned = append(res.Banned, id)
		}
	}
	sort.Slice(res.Banned, func(i, j int) bool { return res.Banned[i] < res.Banned[j] })
	return res, c, nil
}

// FootprintReport runs the same honest population against each APF and
// reports the resulting task-table footprints — §4's compactness race made
// measurable: volunteers × tasks map to wildly different table sizes
// depending on stride growth.
type FootprintReport struct {
	Name      string
	Footprint int64
	// Utilization = tasks issued / footprint: the fraction of the task
	// table actually used.
	Utilization float64
}

// String renders the report row.
func (f FootprintReport) String() string {
	return fmt.Sprintf("%-8s footprint=%12d utilization=%8.6f", f.Name, f.Footprint, f.Utilization)
}
