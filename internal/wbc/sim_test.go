package wbc

import (
	"testing"

	"pairfn/internal/apf"
)

// TestAccountability is experiment E19: a mixed population (honest,
// careless, malicious, churning) runs concurrently; the end-of-run full
// audit must attribute every corrupted result to the volunteer identity
// that produced it — zero attribution errors.
func TestAccountability(t *testing.T) {
	res, c, err := Simulate(SimConfig{
		Coordinator: Config{
			APF:         apf.NewTHash(),
			Workload:    DivisorSum{},
			AuditRate:   0.25,
			StrikeLimit: 2,
			Seed:        99,
		},
		Profiles: []Profile{
			{Name: "honest", Count: 6, ErrorRate: 0, Tasks: 40, Speed: 1},
			{Name: "careless", Count: 3, ErrorRate: 0.1, Tasks: 40, Speed: 1},
			{Name: "malicious", Count: 2, ErrorRate: 0.9, Tasks: 40, Speed: 2},
			{Name: "churner", Count: 2, ErrorRate: 0, Tasks: 30, DepartAfter: 10, Speed: 0.5},
		},
		Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AttributionErrors != 0 {
		t.Fatalf("attribution errors: %d", res.AttributionErrors)
	}
	m := res.Metrics
	if m.Completed == 0 || m.Registered < 13 {
		t.Fatalf("implausible metrics: %+v", m)
	}
	// Malicious volunteers at 90% error with 25% audits and 2 strikes are
	// overwhelmingly likely to be banned within 40 tasks.
	if m.Bans == 0 {
		t.Error("expected at least one ban")
	}
	// Every bad result charged must belong to a corrupting profile
	// (checked via the ground truth maps being populated).
	total := 0
	for v, ks := range res.BadByVolunteer {
		if len(ks) == 0 {
			continue
		}
		if res.Corrupted[v] == nil {
			t.Errorf("volunteer %d charged but never corrupted", v)
			continue
		}
		total += len(ks)
	}
	if total == 0 {
		t.Error("no bad results recorded — careless/malicious profiles should produce some")
	}
	// Footprint must match the ledger.
	if m.Footprint != int64(c.Ledger().Footprint()) {
		t.Errorf("metrics footprint %d ≠ ledger %d", m.Footprint, c.Ledger().Footprint())
	}
}

// TestSimulateDeterministicGroundTruth re-runs the same seeded simulation
// and checks aggregate ground truth is reproducible (schedules differ, but
// per-identity corruption decisions are seeded per slot).
func TestSimulateDeterministicGroundTruth(t *testing.T) {
	cfg := SimConfig{
		Coordinator: Config{
			APF: apf.NewTStar(), Workload: DivisorSum{}, AuditRate: 0, StrikeLimit: 1, Seed: 3,
		},
		Profiles: []Profile{
			{Name: "careless", Count: 4, ErrorRate: 0.2, Tasks: 25, Speed: 1},
		},
		Seed: 11,
	}
	r1, _, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	count := func(r *SimResult) int {
		n := 0
		for _, m := range r.Corrupted {
			n += len(m)
		}
		return n
	}
	// With AuditRate 0 nobody is banned, every volunteer completes all 25
	// tasks, and the per-slot RNG makes corruption counts reproducible.
	if count(r1) != count(r2) {
		t.Errorf("ground truth not reproducible: %d vs %d", count(r1), count(r2))
	}
	if r1.AttributionErrors != 0 || r2.AttributionErrors != 0 {
		t.Error("attribution errors in unaudited run")
	}
}

// TestFootprintRace runs the same honest population over each APF family
// and checks the §4 compactness ordering: T<1> ≫ T<3> > T# ≥ T* for 64
// volunteers × 8 tasks. (T* beats T# only at much larger row counts; here
// we only require it not be wildly worse.)
func TestFootprintRace(t *testing.T) {
	run := func(f apf.APF) int64 {
		_, c, err := Simulate(SimConfig{
			Coordinator: Config{APF: f, Workload: Null{}, Seed: 1},
			Profiles: []Profile{
				{Name: "honest", Count: 64, ErrorRate: 0, Tasks: 8, Speed: 1},
			},
			Seed: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c.Metrics().Footprint
	}
	f1 := run(apf.NewTC(1))
	f3 := run(apf.NewTC(3))
	fh := run(apf.NewTHash())
	fs := run(apf.NewTStar())
	if !(f1 > 1000*f3) {
		t.Errorf("T<1> footprint %d should be ≫ T<3>'s %d", f1, f3)
	}
	if !(f3 > fh) {
		t.Errorf("T<3> footprint %d should exceed T#'s %d", f3, fh)
	}
	if fs > 4*fh {
		t.Errorf("T* footprint %d wildly worse than T#'s %d", fs, fh)
	}
}

// TestPrimeCountWorkloadEndToEnd runs a small simulation over the real
// prime-counting workload, with full auditing, to exercise Do-based
// verification end to end.
func TestPrimeCountWorkloadEndToEnd(t *testing.T) {
	res, _, err := Simulate(SimConfig{
		Coordinator: Config{
			APF:         apf.NewTHash(),
			Workload:    PrimeCount{Span: 50},
			AuditRate:   1.0,
			StrikeLimit: 1,
			Seed:        21,
		},
		Profiles: []Profile{
			{Name: "honest", Count: 4, ErrorRate: 0, Tasks: 12, Speed: 1},
			{Name: "saboteur", Count: 1, ErrorRate: 1.0, Tasks: 12, Speed: 1},
		},
		Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Bans != 1 {
		t.Errorf("saboteur not banned exactly once: %+v", res.Metrics)
	}
	if res.AttributionErrors != 0 {
		t.Errorf("attribution errors: %d", res.AttributionErrors)
	}
	if len(res.Banned) != 1 {
		t.Errorf("banned list: %v", res.Banned)
	}
}

// TestAccountabilityUnderRebalance re-runs the mixed population with the
// front end rebalancing rows mid-flight: attribution must still be exact,
// because past tasks are covered by seq-range bindings and in-flight tasks
// by their issue-time binding.
func TestAccountabilityUnderRebalance(t *testing.T) {
	res, _, err := Simulate(SimConfig{
		Coordinator: Config{
			APF:         apf.NewTHash(),
			Workload:    DivisorSum{},
			AuditRate:   0.2,
			StrikeLimit: 2,
			Seed:        41,
		},
		Profiles: []Profile{
			{Name: "honest", Count: 5, ErrorRate: 0, Tasks: 30, Speed: 1},
			{Name: "careless", Count: 3, ErrorRate: 0.15, Tasks: 30, Speed: 2},
			{Name: "churner", Count: 2, ErrorRate: 0.05, Tasks: 24, DepartAfter: 8, Speed: 0.5},
		},
		RebalanceEvery: 10,
		Seed:           17,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AttributionErrors != 0 {
		t.Fatalf("attribution errors under rebalance: %d", res.AttributionErrors)
	}
	if res.Metrics.Completed == 0 {
		t.Fatal("no work done")
	}
}
