package wbc

import "pairfn/internal/numtheory"

// TaskID is a 1-based index into the task universe — the value of the
// task-allocation function 𝒯(v, t).
type TaskID int64

// A Workload defines the semantics of the task universe: what computing
// task k means and what the correct result is. Results must be
// deterministic so the server can audit by recomputation.
type Workload interface {
	// Name identifies the workload in reports.
	Name() string
	// Do computes (and returns) the result of task k.
	Do(k TaskID) int64
}

// PrimeCount is a verifiable unit of work in the spirit of the
// distributed-search projects §4 cites (RSA factoring by Web, Intel P2P,
// FightAIDS@Home): task k counts the primes in the k-th block of Span
// consecutive integers. Deterministic, embarrassingly parallel, cheap to
// audit, and impossible to fake without doing the work.
type PrimeCount struct {
	// Span is the block width; must be ≥ 1.
	Span int64
}

// Name implements Workload.
func (PrimeCount) Name() string { return "prime-count" }

// Do implements Workload.
func (w PrimeCount) Do(k TaskID) int64 {
	span := w.Span
	if span < 1 {
		span = 1
	}
	lo := (int64(k) - 1) * span
	return numtheory.CountPrimesSegmented(lo+1, lo+span)
}

// DivisorSum is an alternative workload: task k returns δ(k), the divisor
// count. Cheap for moderate indices — but O(√k), so allocation-only
// experiments over stride-exploding APFs (whose task indices reach 2^60)
// should use Null instead.
type DivisorSum struct{}

// Name implements Workload.
func (DivisorSum) Name() string { return "divisor-sum" }

// Do implements Workload.
func (DivisorSum) Do(k TaskID) int64 { return numtheory.DivisorCount(int64(k)) }

// Null is the O(1) identity workload: task k's "result" is k. It isolates
// the allocation/accountability machinery from arithmetic cost — the right
// choice for footprint races across APF families, where 𝒯^<1> issues task
// indices near 2^62.
type Null struct{}

// Name implements Workload.
func (Null) Name() string { return "null" }

// Do implements Workload.
func (Null) Do(k TaskID) int64 { return int64(k) }
