package wbc

import (
	"fmt"
	"sort"
	"sync"
)

// VotingMetrics summarizes a replicated run.
type VotingMetrics struct {
	// Decided is the number of logical tasks with an accepted result.
	Decided int64
	// AcceptedBad counts decided logical tasks whose accepted result is
	// wrong — what replication is meant to drive toward zero.
	AcceptedBad int64
	// Ties counts logical tasks whose votes had no strict majority; they
	// are re-replicated.
	Ties int64
	// Replicas is the total number of physical tasks issued.
	Replicas int64
}

// Voting layers r-way replication with majority voting on top of a
// Coordinator. The paper's scheme provides *accountability* — after the
// fact, every bad result names its producer; replication adds *robustness*
// — bad results are outvoted before acceptance. Each logical task ℓ is
// computed by r distinct volunteer identities; the physical task indices
// remain APF-allocated, so attribution of every replica still costs one
// 𝒯⁻¹. Safe for concurrent use.
type Voting struct {
	c     *Coordinator
	r     int
	inner Workload // logical-task semantics

	mu sync.Mutex
	// next is the lowest logical task not yet fully assigned.
	next int64
	// logicalOf maps physical (APF-allocated) task index → logical task.
	logicalOf map[TaskID]int64
	// assigned[ℓ] = volunteers holding or having computed a replica of ℓ.
	assigned map[int64]map[VolunteerID]bool
	// votes[ℓ] = results received so far.
	votes map[int64][]int64
	// accepted[ℓ] = majority result, once decided.
	accepted map[int64]int64
	// open is the sorted list of logical tasks still needing replicas.
	open []int64
	m    VotingMetrics
}

// NewVoting builds a replicated system from cfg (whose Workload defines
// *logical* task semantics) and replication factor r ≥ 1. The underlying
// Coordinator is created internally with a wrapped workload that resolves
// physical indices to logical tasks, so inline audits recompute the right
// thing.
func NewVoting(cfg Config, r int) (*Voting, error) {
	if r < 1 {
		return nil, fmt.Errorf("wbc: replication factor %d < 1", r)
	}
	if cfg.Workload == nil {
		return nil, fmt.Errorf("wbc: Config.Workload is required")
	}
	v := &Voting{
		r: r, inner: cfg.Workload, next: 1,
		logicalOf: make(map[TaskID]int64),
		assigned:  make(map[int64]map[VolunteerID]bool),
		votes:     make(map[int64][]int64),
		accepted:  make(map[int64]int64),
	}
	cfg.Workload = replicatedWorkload{v: v, inner: cfg.Workload}
	c, err := NewCoordinator(cfg)
	if err != nil {
		return nil, err
	}
	v.c = c
	return v, nil
}

// replicatedWorkload adapts logical-task semantics to the coordinator's
// physical indices: Do(k) computes the logical task bound to k. Lock
// order: the coordinator may call Do while holding its own mutex; Do then
// takes v.mu, and nothing takes the coordinator's mutex while holding
// v.mu, so the order is acyclic.
type replicatedWorkload struct {
	v     *Voting
	inner Workload
}

// Name implements Workload.
func (w replicatedWorkload) Name() string { return w.inner.Name() + "×replicated" }

// Do implements Workload.
func (w replicatedWorkload) Do(k TaskID) int64 {
	if l, ok := w.v.Logical(k); ok {
		return w.inner.Do(TaskID(l))
	}
	return w.inner.Do(k)
}

// Coordinator returns the underlying coordinator (registration, banning
// and attribution all live there).
func (v *Voting) Coordinator() *Coordinator { return v.c }

// NextTask issues a physical task to volunteer id and returns both its
// APF index (the accountability handle) and the logical task to compute.
// Replicas of one logical task always go to distinct volunteers.
func (v *Voting) NextTask(id VolunteerID) (TaskID, int64, error) {
	k, err := v.c.NextTask(id)
	if err != nil {
		return 0, 0, err
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if l, ok := v.logicalOf[k]; ok {
		// A reissued physical task (churn) keeps its logical binding.
		return k, l, nil
	}
	l, err := v.pickLogicalLocked(id)
	if err != nil {
		return 0, 0, err
	}
	v.logicalOf[k] = l
	v.assigned[l][id] = true
	v.m.Replicas++
	return k, l, nil
}

// pickLogicalLocked returns the lowest open logical task not yet touched
// by id, opening a fresh one if necessary.
func (v *Voting) pickLogicalLocked(id VolunteerID) (int64, error) {
	for _, l := range v.open {
		if !v.assigned[l][id] && len(v.assigned[l]) < v.r {
			return l, nil
		}
	}
	// Open the next logical task.
	l := v.next
	v.next++
	v.assigned[l] = make(map[VolunteerID]bool, v.r)
	v.open = append(v.open, l)
	return l, nil
}

// Submit records volunteer id's result for physical task k. When the r-th
// replica of k's logical task arrives, the strict majority result is
// accepted; a tie re-opens the task for fresh replicas.
func (v *Voting) Submit(id VolunteerID, k TaskID, result int64) (caught bool, err error) {
	caught, err = v.c.Submit(id, k, result)
	if err != nil {
		return caught, err
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	l, ok := v.logicalOf[k]
	if !ok {
		return caught, fmt.Errorf("wbc: physical task %d has no logical binding", k)
	}
	v.votes[l] = append(v.votes[l], result)
	if len(v.votes[l]) < v.r {
		return caught, nil
	}
	// Majority vote.
	counts := make(map[int64]int)
	for _, r := range v.votes[l] {
		counts[r]++
	}
	best, bestN, tie := int64(0), 0, false
	for r, n := range counts {
		switch {
		case n > bestN:
			best, bestN, tie = r, n, false
		case n == bestN:
			tie = true
		}
	}
	if tie {
		// Re-open with fresh replicas: clear votes and assignment so new
		// volunteers re-compute it.
		v.m.Ties++
		v.votes[l] = nil
		v.assigned[l] = make(map[VolunteerID]bool, v.r)
		return caught, nil
	}
	v.accepted[l] = best
	v.closeLocked(l)
	v.m.Decided++
	if v.inner.Do(TaskID(l)) != best {
		v.m.AcceptedBad++
	}
	return caught, nil
}

// closeLocked removes l from the open list.
func (v *Voting) closeLocked(l int64) {
	i := sort.Search(len(v.open), func(i int) bool { return v.open[i] >= l })
	if i < len(v.open) && v.open[i] == l {
		v.open = append(v.open[:i], v.open[i+1:]...)
	}
}

// Accepted returns the accepted result of logical task l, if decided.
func (v *Voting) Accepted(l int64) (int64, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	r, ok := v.accepted[l]
	return r, ok
}

// Logical returns the logical task bound to physical index k.
func (v *Voting) Logical(k TaskID) (int64, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	l, ok := v.logicalOf[k]
	return l, ok
}

// Metrics returns a snapshot of the voting counters.
func (v *Voting) Metrics() VotingMetrics {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.m
}
