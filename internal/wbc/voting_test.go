package wbc

import (
	"math/rand"
	"testing"

	"pairfn/internal/apf"
)

// runVoting drives a population of volunteers against a Voting system:
// each volunteer computes `tasks` replicas, corrupting results at its
// error rate. Returns the voting metrics.
func runVoting(t *testing.T, r int, errRates []float64, tasks int, seed int64) VotingMetrics {
	t.Helper()
	v, err := NewVoting(Config{
		APF:      apf.NewTHash(),
		Workload: DivisorSum{},
		Seed:     seed,
	}, r)
	if err != nil {
		t.Fatal(err)
	}
	c := v.Coordinator()
	type vol struct {
		id  VolunteerID
		rng *rand.Rand
		e   float64
	}
	var vols []vol
	for i, e := range errRates {
		vols = append(vols, vol{
			id:  c.MustRegister(1),
			rng: rand.New(rand.NewSource(seed + int64(i)*7919)),
			e:   e,
		})
	}
	for step := 0; step < tasks; step++ {
		for _, w := range vols {
			k, l, err := v.NextTask(w.id)
			if err != nil {
				t.Fatal(err)
			}
			res := DivisorSum{}.Do(TaskID(l))
			if w.rng.Float64() < w.e {
				res++
			}
			if _, err := v.Submit(w.id, k, res); err != nil {
				t.Fatal(err)
			}
		}
	}
	return v.Metrics()
}

// TestVotingReducesAcceptedBad is the replication extension's headline:
// with a 20%-careless population, accepted-bad results nearly vanish at
// r = 3 compared to r = 1.
func TestVotingReducesAcceptedBad(t *testing.T) {
	rates := []float64{0.1, 0.1, 0.1, 0.1, 0.1, 0.1}
	m1 := runVoting(t, 1, rates, 90, 11)
	m3 := runVoting(t, 3, rates, 90, 11)
	if m1.Decided == 0 || m3.Decided == 0 {
		t.Fatalf("nothing decided: %+v %+v", m1, m3)
	}
	rate1 := float64(m1.AcceptedBad) / float64(m1.Decided)
	rate3 := float64(m3.AcceptedBad) / float64(m3.Decided)
	// r = 1 accepts ≈ 10% bad; r = 3 majority needs ≥ 2 of 3 corrupted:
	// 3·0.01·0.9 + 0.001 ≈ 2.8% — comfortably under half of r = 1's rate.
	if rate1 < 0.05 {
		t.Errorf("r=1 accepted-bad rate %v implausibly low", rate1)
	}
	if rate3 >= rate1/2 {
		t.Errorf("r=3 accepted-bad rate %v not ≪ r=1's %v", rate3, rate1)
	}
}

// TestVotingAllGoodWithHonestMajority: one saboteur against two honest
// replicas never corrupts an accepted result.
func TestVotingAllGoodWithHonestMajority(t *testing.T) {
	v, err := NewVoting(Config{APF: apf.NewTHash(), Workload: DivisorSum{}, Seed: 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	c := v.Coordinator()
	honest1, honest2 := c.MustRegister(1), c.MustRegister(1)
	saboteur := c.MustRegister(1)
	for step := 0; step < 40; step++ {
		for _, id := range []VolunteerID{honest1, honest2, saboteur} {
			k, l, err := v.NextTask(id)
			if err != nil {
				t.Fatal(err)
			}
			res := DivisorSum{}.Do(TaskID(l))
			if id == saboteur {
				res = -999
			}
			if _, err := v.Submit(id, k, res); err != nil {
				t.Fatal(err)
			}
		}
	}
	m := v.Metrics()
	if m.Decided == 0 {
		t.Fatal("nothing decided")
	}
	if m.AcceptedBad != 0 {
		t.Errorf("accepted %d bad results despite honest majority", m.AcceptedBad)
	}
	if m.Ties != 0 {
		t.Errorf("unexpected ties: %+v", m)
	}
	// Every logical task was decided with the correct value.
	for l := int64(1); l <= 10; l++ {
		got, ok := v.Accepted(l)
		if !ok {
			t.Fatalf("logical task %d undecided", l)
		}
		if want := (DivisorSum{}).Do(TaskID(l)); got != want {
			t.Errorf("accepted[%d] = %d, want %d", l, got, want)
		}
	}
}

// TestVotingDistinctReplicas: replicas of one logical task go to distinct
// volunteers.
func TestVotingDistinctReplicas(t *testing.T) {
	v, err := NewVoting(Config{APF: apf.NewTHash(), Workload: Null{}, Seed: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	c := v.Coordinator()
	a, b := c.MustRegister(1), c.MustRegister(1)
	seen := map[int64][]VolunteerID{}
	for step := 0; step < 10; step++ {
		for _, id := range []VolunteerID{a, b} {
			k, l, err := v.NextTask(id)
			if err != nil {
				t.Fatal(err)
			}
			seen[l] = append(seen[l], id)
			if _, err := v.Submit(id, k, int64(l)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for l, ids := range seen {
		if len(ids) != 2 || ids[0] == ids[1] {
			t.Errorf("logical %d replicas: %v", l, ids)
		}
	}
	// Null workload: every decided task is correct.
	if m := v.Metrics(); m.AcceptedBad != 0 || m.Decided == 0 {
		t.Errorf("metrics: %+v", m)
	}
}

// TestVotingTieReopens: with r = 2 and one always-bad volunteer, every
// vote ties and tasks are re-replicated (never wrongly decided).
func TestVotingTieReopens(t *testing.T) {
	v, err := NewVoting(Config{APF: apf.NewTHash(), Workload: Null{}, Seed: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	c := v.Coordinator()
	good, bad := c.MustRegister(1), c.MustRegister(1)
	for step := 0; step < 6; step++ {
		for _, id := range []VolunteerID{good, bad} {
			k, l, err := v.NextTask(id)
			if err != nil {
				t.Fatal(err)
			}
			res := int64(l)
			if id == bad {
				res = -1
			}
			if _, err := v.Submit(id, k, res); err != nil {
				t.Fatal(err)
			}
		}
	}
	m := v.Metrics()
	if m.Ties == 0 {
		t.Error("expected ties with an always-disagreeing pair")
	}
	if m.AcceptedBad != 0 {
		t.Errorf("ties must not decide badly: %+v", m)
	}
}

// TestVotingAuditStillWorks: inline audits on physical tasks recompute the
// logical value through the wrapped workload, so a saboteur is still
// banned by the underlying coordinator.
func TestVotingAuditStillWorks(t *testing.T) {
	v, err := NewVoting(Config{
		APF: apf.NewTHash(), Workload: DivisorSum{},
		AuditRate: 1.0, StrikeLimit: 2, Seed: 9,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	c := v.Coordinator()
	good, bad := c.MustRegister(1), c.MustRegister(1)
	banned := false
	for step := 0; step < 10 && !banned; step++ {
		for _, id := range []VolunteerID{good, bad} {
			k, l, err := v.NextTask(id)
			if err != nil {
				if id == bad {
					banned = true
					break
				}
				t.Fatal(err)
			}
			res := DivisorSum{}.Do(TaskID(l))
			if id == bad {
				res += 7
			}
			if _, err := v.Submit(id, k, res); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !banned && !c.Banned(bad) {
		t.Error("saboteur not banned despite 100% audits")
	}
}

// TestNewVotingValidation covers constructor errors.
func TestNewVotingValidation(t *testing.T) {
	if _, err := NewVoting(Config{APF: apf.NewTHash(), Workload: Null{}}, 0); err == nil {
		t.Error("r = 0 should fail")
	}
	if _, err := NewVoting(Config{APF: apf.NewTHash()}, 2); err == nil {
		t.Error("missing workload should fail")
	}
	if _, err := NewVoting(Config{Workload: Null{}}, 2); err == nil {
		t.Error("missing APF should fail")
	}
}
