package wbc

import (
	"errors"
	"testing"

	"pairfn/internal/apf"
)

func newTestCoordinator(t *testing.T, f apf.APF, auditRate float64, strikes int) *Coordinator {
	t.Helper()
	c, err := NewCoordinator(Config{
		APF:         f,
		Workload:    DivisorSum{},
		AuditRate:   auditRate,
		StrikeLimit: strikes,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestAllocationFollowsAPF checks the core property: volunteer v's t-th
// task is exactly 𝒯(row(v), t).
func TestAllocationFollowsAPF(t *testing.T) {
	f := NewTestAPF()
	c := newTestCoordinator(t, f, 0, 1)
	var vols []VolunteerID
	for i := 0; i < 5; i++ {
		vols = append(vols, c.MustRegister(1))
	}
	for seq := int64(1); seq <= 10; seq++ {
		for i, v := range vols {
			k, err := c.NextTask(v)
			if err != nil {
				t.Fatal(err)
			}
			row := int64(i + 1) // registration order gives rows 1..5
			want, err := f.Encode(row, seq)
			if err != nil {
				t.Fatal(err)
			}
			if int64(k) != want {
				t.Fatalf("volunteer %d task %d = %d, want 𝒯(%d, %d) = %d",
					v, seq, k, row, seq, want)
			}
		}
	}
}

// NewTestAPF returns 𝒯^# — quadratic strides, good default for tests.
func NewTestAPF() apf.APF { return apf.NewTHash() }

// TestAttribution checks 𝒯⁻¹-based attribution for every issued task.
func TestAttribution(t *testing.T) {
	c := newTestCoordinator(t, NewTestAPF(), 0, 1)
	v1, v2 := c.MustRegister(1), c.MustRegister(1)
	owner := make(map[TaskID]VolunteerID)
	for i := 0; i < 20; i++ {
		k1, err := c.NextTask(v1)
		if err != nil {
			t.Fatal(err)
		}
		owner[k1] = v1
		k2, err := c.NextTask(v2)
		if err != nil {
			t.Fatal(err)
		}
		owner[k2] = v2
	}
	for k, want := range owner {
		got, err := c.Attribute(k)
		if err != nil {
			t.Fatalf("Attribute(%d): %v", k, err)
		}
		if got != want {
			t.Fatalf("Attribute(%d) = %d, want %d", k, got, want)
		}
	}
	// Never-issued index.
	if _, err := c.Attribute(TaskID(1 << 40)); !errors.Is(err, ErrUnknownTask) {
		t.Errorf("Attribute of unissued task: %v", err)
	}
}

// TestAuditCatchesAndBans verifies the accountability loop: with 100%
// auditing, a volunteer submitting bad results is banned at the strike
// limit and its later operations fail.
func TestAuditCatchesAndBans(t *testing.T) {
	c := newTestCoordinator(t, NewTestAPF(), 1.0, 3)
	v := c.MustRegister(1)
	strikes := 0
	for i := 0; i < 10; i++ {
		k, err := c.NextTask(v)
		if err != nil {
			if strikes != 3 {
				t.Fatalf("cut off after %d strikes, want 3", strikes)
			}
			if !errors.Is(err, ErrBanned) {
				t.Fatalf("expected ErrBanned, got %v", err)
			}
			if !c.Banned(v) {
				t.Error("Banned(v) should be true")
			}
			m := c.Metrics()
			if m.Bans != 1 || m.BadCaught != 3 {
				t.Errorf("metrics = %+v", m)
			}
			return
		}
		caught, err := c.Submit(v, k, c.cfg.Workload.Do(k)+1) // always wrong
		if err != nil {
			t.Fatal(err)
		}
		if caught {
			strikes++
		}
	}
	t.Fatal("volunteer was never banned")
}

// TestHonestVolunteerNeverBanned is the complement.
func TestHonestVolunteerNeverBanned(t *testing.T) {
	c := newTestCoordinator(t, NewTestAPF(), 1.0, 1)
	v := c.MustRegister(1)
	for i := 0; i < 50; i++ {
		k, err := c.NextTask(v)
		if err != nil {
			t.Fatal(err)
		}
		if caught, err := c.Submit(v, k, c.cfg.Workload.Do(k)); err != nil || caught {
			t.Fatalf("honest submission flagged: %v, %v", caught, err)
		}
	}
	if c.Banned(v) {
		t.Error("honest volunteer banned")
	}
}

// TestDepartureAndRowReuse checks the §4 front end: a departing volunteer's
// row is inherited by the next arrival, who first receives the departed
// volunteer's outstanding (fetched, unsubmitted) tasks, with attribution
// overridden to the new computer.
func TestDepartureAndRowReuse(t *testing.T) {
	c := newTestCoordinator(t, NewTestAPF(), 0, 1)
	v1 := c.MustRegister(1)
	row1, _ := c.Row(v1)
	// Fetch two tasks, submit only the first.
	k1, _ := c.NextTask(v1)
	k2, _ := c.NextTask(v1)
	if _, err := c.Submit(v1, k1, c.cfg.Workload.Do(k1)); err != nil {
		t.Fatal(err)
	}
	if err := c.Depart(v1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.NextTask(v1); !errors.Is(err, ErrDeparted) {
		t.Errorf("departed NextTask: %v", err)
	}
	v2 := c.MustRegister(1)
	row2, _ := c.Row(v2)
	if row2 != row1 {
		t.Fatalf("newcomer got row %d, want vacated row %d", row2, row1)
	}
	// First task for v2 is the orphaned k2 (a reissue).
	k, err := c.NextTask(v2)
	if err != nil {
		t.Fatal(err)
	}
	if k != k2 {
		t.Fatalf("reissued task = %d, want %d", k, k2)
	}
	if got, _ := c.Attribute(k2); got != v2 {
		t.Errorf("reissued task attributed to %d, want %d", got, v2)
	}
	// k1 remains attributed to the departed v1.
	if got, _ := c.Attribute(k1); got != v1 {
		t.Errorf("historical task attributed to %d, want %d", got, v1)
	}
	if c.Metrics().Reissues != 1 {
		t.Errorf("Reissues = %d", c.Metrics().Reissues)
	}
}

// TestSubmitValidation rejects submissions for tasks not issued to the
// submitter.
func TestSubmitValidation(t *testing.T) {
	c := newTestCoordinator(t, NewTestAPF(), 0, 1)
	v1, v2 := c.MustRegister(1), c.MustRegister(1)
	k, _ := c.NextTask(v1)
	if _, err := c.Submit(v2, k, 0); !errors.Is(err, ErrNotIssuedToYou) {
		t.Errorf("cross-submit: %v", err)
	}
	if _, err := c.Submit(v1, k+99999, 0); !errors.Is(err, ErrNotIssuedToYou) {
		t.Errorf("phantom submit: %v", err)
	}
	if _, err := c.Submit(VolunteerID(99), k, 0); !errors.Is(err, ErrUnknownVolunteer) {
		t.Errorf("unknown submit: %v", err)
	}
}

// TestRebalanceOrdersBySpeed checks that after Rebalance, completed-task
// counts are non-increasing in row index, and attribution of past tasks is
// unchanged.
func TestRebalanceOrdersBySpeed(t *testing.T) {
	c := newTestCoordinator(t, NewTestAPF(), 0, 1)
	slow := c.MustRegister(0.1)
	fast := c.MustRegister(10)
	rowSlow0, _ := c.Row(slow)
	rowFast0, _ := c.Row(fast)
	if rowSlow0 != 1 || rowFast0 != 2 {
		t.Fatalf("initial rows: %d, %d", rowSlow0, rowFast0)
	}
	// Fast volunteer completes more tasks.
	pre := make(map[TaskID]VolunteerID)
	for i := 0; i < 10; i++ {
		k, _ := c.NextTask(fast)
		if _, err := c.Submit(fast, k, c.cfg.Workload.Do(k)); err != nil {
			t.Fatal(err)
		}
		pre[k] = fast
	}
	k, _ := c.NextTask(slow)
	if _, err := c.Submit(slow, k, c.cfg.Workload.Do(k)); err != nil {
		t.Fatal(err)
	}
	pre[k] = slow
	c.Rebalance()
	rowFast, _ := c.Row(fast)
	rowSlow, _ := c.Row(slow)
	if !(rowFast < rowSlow) {
		t.Errorf("after rebalance: fast row %d, slow row %d", rowFast, rowSlow)
	}
	// History intact.
	for k, want := range pre {
		if got, err := c.Attribute(k); err != nil || got != want {
			t.Errorf("post-rebalance Attribute(%d) = %d, %v; want %d", k, got, err, want)
		}
	}
	// New tasks follow the new rows.
	k2, _ := c.NextTask(fast)
	row, seq, err := c.Ledger().APF().Decode(int64(k2))
	if err != nil {
		t.Fatal(err)
	}
	if row != rowFast {
		t.Errorf("new task on row %d, want %d (seq %d)", row, rowFast, seq)
	}
	if got, _ := c.Attribute(k2); got != fast {
		t.Errorf("new task attributed to %d", got)
	}
}

// TestFootprintMatchesAPFTheory checks the E19 compactness accounting: with
// V always-on volunteers each doing T tasks, the footprint equals
// max_v 𝒯(v, T) — so compact APFs yield dramatically smaller task tables.
func TestFootprintMatchesAPFTheory(t *testing.T) {
	const V, T = 16, 16
	families := []apf.APF{apf.NewTC(1), apf.NewTC(3), apf.NewTHash(), apf.NewTStar()}
	var footprints []int64
	for _, f := range families {
		c := newTestCoordinator(t, f, 0, 1)
		var vols []VolunteerID
		for i := 0; i < V; i++ {
			vols = append(vols, c.MustRegister(1))
		}
		for seq := 0; seq < T; seq++ {
			for _, v := range vols {
				k, err := c.NextTask(v)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := c.Submit(v, k, c.cfg.Workload.Do(k)); err != nil {
					t.Fatal(err)
				}
			}
		}
		var want int64
		for row := int64(1); row <= V; row++ {
			z, err := f.Encode(row, T)
			if err != nil {
				t.Fatal(err)
			}
			if z > want {
				want = z
			}
		}
		got := c.Metrics().Footprint
		if got != want {
			t.Errorf("%s: footprint = %d, want max 𝒯(v, %d) = %d", f.Name(), got, T, want)
		}
		footprints = append(footprints, got)
	}
	// 𝒯^<1> (exponential strides) must be far worse than 𝒯^# and 𝒯^★.
	if !(footprints[0] > 10*footprints[2]) {
		t.Errorf("T<1> footprint %d should dwarf T# footprint %d", footprints[0], footprints[2])
	}
}

// TestConfigValidation covers constructor errors.
func TestConfigValidation(t *testing.T) {
	if _, err := NewCoordinator(Config{Workload: DivisorSum{}}); err == nil {
		t.Error("missing APF should fail")
	}
	if _, err := NewCoordinator(Config{APF: NewTestAPF()}); err == nil {
		t.Error("missing workload should fail")
	}
	if _, err := NewCoordinator(Config{APF: NewTestAPF(), Workload: DivisorSum{}, AuditRate: 1.5}); err == nil {
		t.Error("bad audit rate should fail")
	}
}

// TestWorkloads checks both workloads' determinism and a known value.
func TestWorkloads(t *testing.T) {
	pc := PrimeCount{Span: 100}
	if got := pc.Do(1); got != 25 { // π(100)
		t.Errorf("PrimeCount block 1 = %d, want 25", got)
	}
	if got := pc.Do(2); got != 21 { // primes in (100, 200]
		t.Errorf("PrimeCount block 2 = %d, want 21", got)
	}
	if pc.Do(7) != pc.Do(7) {
		t.Error("workload must be deterministic")
	}
	if (PrimeCount{}).Do(1) != 0 { // span defaults to 1; block 1 is {1}
		t.Error("degenerate span")
	}
	if (DivisorSum{}).Do(12) != 6 {
		t.Error("δ(12) = 6")
	}
}

// TestReport checks the roster view against driven state.
func TestReport(t *testing.T) {
	c := newTestCoordinator(t, NewTestAPF(), 1.0, 1)
	honest := c.MustRegister(1)
	saboteur := c.MustRegister(1)
	leaver := c.MustRegister(1)
	for i := 0; i < 3; i++ {
		k, err := c.NextTask(honest)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Submit(honest, k, c.cfg.Workload.Do(k)); err != nil {
			t.Fatal(err)
		}
	}
	k, _ := c.NextTask(saboteur)
	if _, err := c.Submit(saboteur, k, -1); err != nil { // audited at 100%, banned at 1 strike
		t.Fatal(err)
	}
	if _, err := c.NextTask(leaver); err != nil { // leaves one outstanding
		t.Fatal(err)
	}
	if err := c.Depart(leaver); err != nil {
		t.Fatal(err)
	}
	rep := c.Report()
	if len(rep) != 3 {
		t.Fatalf("report rows: %d", len(rep))
	}
	if r := rep[0]; r.ID != honest || r.Completed != 3 || r.Banned || r.Outstanding != 0 {
		t.Errorf("honest row: %+v", r)
	}
	if r := rep[1]; r.ID != saboteur || !r.Banned || r.Strikes != 1 || r.Row != -1 {
		t.Errorf("saboteur row: %+v", r)
	}
	if r := rep[2]; r.ID != leaver || !r.Departed || r.Row != -1 {
		t.Errorf("leaver row: %+v", r)
	}
	// The leaver's outstanding task became an orphan, not an outstanding.
	if rep[2].Outstanding != 0 {
		t.Errorf("departed volunteer keeps outstanding: %+v", rep[2])
	}
}
