#!/usr/bin/env bash
# Chaos smoke for the tabled durability contract: run a WAL-backed
# tabledserver under load, SIGKILL it mid-run, restart it, and assert that
# every write the server ACKNOWLEDGED is still readable with its exact
# value. Acked writes surviving a crash is the whole point of the WAL
# (internal/tabled/wal.go); this script is the end-to-end proof.
#
# Usage: scripts/chaos_smoke.sh   (from the repo root; builds with -race)
set -u

PORT="${CHAOS_PORT:-18081}"
DIR="$(mktemp -d)"
SRV_PID=""
trap '[ -n "$SRV_PID" ] && kill -9 "$SRV_PID" 2>/dev/null; rm -rf "$DIR"' EXIT

echo "chaos-smoke: building (server with -race)"
go build -race -o "$DIR/tabledserver" ./cmd/tabledserver || exit 1
go build -o "$DIR/tabledload" ./cmd/tabledload || exit 1

start_server() {
    "$DIR/tabledserver" -addr "127.0.0.1:$PORT" \
        -wal "$DIR/table.wal" -wal-sync 2ms \
        -snapshot "$DIR/table.gob" \
        -rows 2048 -cols 2048 >>"$DIR/server.log" 2>&1 &
    SRV_PID=$!
    for _ in $(seq 1 100); do
        if curl -fsS "http://127.0.0.1:$PORT/healthz" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.2
    done
    echo "chaos-smoke: FAIL: server did not become healthy"
    cat "$DIR/server.log"
    exit 1
}

start_server
echo "chaos-smoke: server up (pid $SRV_PID); starting sequential load"
"$DIR/tabledload" -addr "http://127.0.0.1:$PORT" \
    -seq -acklog "$DIR/acked.log" -retries 5 \
    -clients 4 -batch 64 -ops 400000 -rows 2048 -cols 2048 \
    >"$DIR/load.log" 2>&1 &
LOAD_PID=$!

sleep 2
echo "chaos-smoke: SIGKILL server mid-load"
kill -9 "$SRV_PID"
SRV_PID=""
# The load generator now only sees connection errors; give its in-flight
# retries a moment to drain the acked-batch flushes, then kill it too —
# only the *acknowledged* prefix in acked.log matters, and each batch is
# flushed to the log before the next is issued. (The -check pass tolerates
# one torn final line from this kill.)
sleep 3
kill -9 "$LOAD_PID" 2>/dev/null
wait "$LOAD_PID" 2>/dev/null

ACKED=$(wc -l <"$DIR/acked.log" 2>/dev/null || echo 0)
if [ "$ACKED" -eq 0 ]; then
    echo "chaos-smoke: FAIL: no writes were acknowledged before the kill"
    cat "$DIR/load.log"
    exit 1
fi
echo "chaos-smoke: $ACKED cells acknowledged; restarting server (snapshot + WAL replay)"

start_server
grep 'wal open' "$DIR/server.log" | tail -1

if ! "$DIR/tabledload" -addr "http://127.0.0.1:$PORT" \
    -check "$DIR/acked.log" -batch 256 -retries 3; then
    echo "chaos-smoke: FAIL: acknowledged writes were lost across the crash"
    exit 1
fi
echo "chaos-smoke: PASS"
