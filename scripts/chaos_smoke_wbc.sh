#!/usr/bin/env bash
# Chaos smoke for the WBC durability + self-healing contract: run a
# journaled wbcserver under volunteer load, SIGKILL it mid-run, restart
# it, and assert (a) every submission a volunteer saw ACKNOWLEDGED is
# still attributed to that volunteer after recovery, and (b) a volunteer
# that stops heartbeating has its lease expired and its outstanding tasks
# reclaimed. Acked attribution surviving kill -9 is the whole point of
# the coordinator journal (internal/wbc/journal.go); this script is the
# end-to-end proof.
#
# Usage: scripts/chaos_smoke_wbc.sh   (from the repo root; builds with -race)
set -u

PORT="${CHAOS_WBC_PORT:-18091}"
URL="http://127.0.0.1:$PORT"
DIR="$(mktemp -d)"
SRV_PID=""
trap '[ -n "$SRV_PID" ] && kill -9 "$SRV_PID" 2>/dev/null; kill -9 $(jobs -p) 2>/dev/null; rm -rf "$DIR"' EXIT

echo "chaos-smoke-wbc: building (server with -race)"
go build -race -o "$DIR/wbcserver" ./cmd/wbcserver || exit 1
go build -o "$DIR/wbcvolunteer" ./cmd/wbcvolunteer || exit 1

start_server() {
    "$DIR/wbcserver" -addr "127.0.0.1:$PORT" \
        -wal "$DIR/wbc.wal" -wal-sync 2ms \
        -checkpoint "$DIR/wbc.ckpt" -checkpoint-every 2s \
        -lease 2s -audit 0 -seed 7 >>"$DIR/server.log" 2>&1 &
    SRV_PID=$!
    for _ in $(seq 1 100); do
        if curl -fsS "$URL/healthz" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.2
    done
    echo "chaos-smoke-wbc: FAIL: server did not become healthy"
    cat "$DIR/server.log"
    exit 1
}

start_server
echo "chaos-smoke-wbc: server up (pid $SRV_PID); starting volunteers"

# Four heartbeating volunteers, each appending an acklog line per
# acknowledged submit. -sleep paces them so the run spans the crash.
VOL_PIDS=""
for i in 1 2 3 4; do
    "$DIR/wbcvolunteer" -url "$URL" -tasks 2000 -depart=false \
        -heartbeat 500ms -sleep 20ms -retries 8 \
        -acklog "$DIR/ack.$i.log" >"$DIR/vol.$i.log" 2>&1 &
    VOL_PIDS="$VOL_PIDS $!"
done

sleep 3
echo "chaos-smoke-wbc: SIGKILL server mid-load"
kill -9 "$SRV_PID"
SRV_PID=""
# Volunteers now retry against a dead server; restart under them. Their
# acklogs hold only acknowledged (journaled + fsynced) submissions.
sleep 1

start_server
echo "chaos-smoke-wbc: server restarted (checkpoint + journal replay)"
grep 'journal open' "$DIR/server.log" | tail -1

# Let the surviving volunteers reconnect and keep working, then kill one
# mid-stream: its heartbeats stop, its lease must expire, and its
# outstanding task must be reclaimed and reissued to a survivor.
sleep 2
VICTIM=$(echo $VOL_PIDS | awk '{print $1}')
echo "chaos-smoke-wbc: killing volunteer pid $VICTIM (heartbeats stop)"
kill -9 "$VICTIM" 2>/dev/null

# Wait out > 2 lease periods for the sweeper.
sleep 5

RECLAIMED=$(curl -fsS "$URL/metrics" | awk '/^wbc_tasks_reclaimed_total/ {print $2}')
EXPIRED=$(curl -fsS "$URL/metrics" | awk '/^wbc_lease_expirations_total/ {print $2}')
echo "chaos-smoke-wbc: lease expirations=$EXPIRED tasks reclaimed=$RECLAIMED"
if [ -z "$EXPIRED" ] || [ "$EXPIRED" -lt 1 ]; then
    echo "chaos-smoke-wbc: FAIL: dead volunteer's lease never expired"
    exit 1
fi

# Stop the remaining volunteers before verification.
kill -9 $VOL_PIDS 2>/dev/null
wait $VOL_PIDS 2>/dev/null

ACKED=0
for i in 1 2 3 4; do
    n=$(wc -l <"$DIR/ack.$i.log" 2>/dev/null || echo 0)
    ACKED=$((ACKED + n))
done
if [ "$ACKED" -eq 0 ]; then
    echo "chaos-smoke-wbc: FAIL: no submissions were acknowledged before the kill"
    cat "$DIR"/vol.*.log
    exit 1
fi
echo "chaos-smoke-wbc: $ACKED submissions acknowledged across the crash; verifying attribution"

for i in 1 2 3 4; do
    [ -s "$DIR/ack.$i.log" ] || continue
    if ! "$DIR/wbcvolunteer" -url "$URL" -check "$DIR/ack.$i.log" -retries 3; then
        echo "chaos-smoke-wbc: FAIL: acknowledged submissions lost or mis-attributed (volunteer $i)"
        exit 1
    fi
done

# No double-applied reissue: every task index appears in at most one
# volunteer's acklog (each physical task is submittable exactly once;
# reclamation hands it to exactly one new owner).
DUPES=$(cat "$DIR"/ack.*.log | awk '{print $1}' | sort | uniq -d | wc -l)
if [ "$DUPES" -ne 0 ]; then
    echo "chaos-smoke-wbc: FAIL: $DUPES task(s) acknowledged to two volunteers (double-applied reissue)"
    exit 1
fi

echo "chaos-smoke-wbc: PASS"
