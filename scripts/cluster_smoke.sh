#!/usr/bin/env bash
# Cluster smoke for the tabledcluster stack (internal/cluster +
# cmd/tabledrouter): boot three race-built tabledserver members and a
# race-built router fronting them, then
#
#   1. bench the router against a standalone single node driving the same
#      load (both JSON report lines land in BENCH_cluster.json — the line
#      with a "nodes" field is the router's);
#   2. drive a -seq ack-logged load through the router and SIGKILL one
#      member mid-load;
#   3. assert the router's /readyz detail reports the dead member while
#      staying 200 (healthy ranges must keep serving);
#   4. filter the ack log to the ranges of members still healthy (range
#      map and states from GET /v1/cluster) and -check it through the
#      router: zero acked-write loss on surviving nodes;
#   5. SIGTERM the router and surviving members — clean drains exit 0.
#
# The cluster runs the diagonal mapping so the filter can recompute every
# cell's address: addr(x,y) = (x+y−1)(x+y−2)/2 + y.
#
# Usage: scripts/cluster_smoke.sh   (from the repo root; builds with -race)
set -u

BASE_PORT="${CLUSTER_PORT:-18091}"   # members take BASE..BASE+2
ROUTER_PORT=$((BASE_PORT + 4))
DIRECT_PORT=$((BASE_PORT + 5))
ROWS=512 COLS=512
BENCH_OPS="${CLUSTER_BENCH_OPS:-60000}"
SEQ_OPS="${CLUSTER_SEQ_OPS:-100000}"
# Split the address space the -seq load actually covers (its first
# SEQ_OPS/COLS rows) across the members, so every node holds acked cells
# by the time one is killed; the last node absorbs everything past it.
SEQ_ROWS=$((SEQ_OPS / COLS))
MAX_ADDR=$(( (SEQ_ROWS + COLS - 1) * (SEQ_ROWS + COLS - 2) / 2 + COLS ))

DIR="$(mktemp -d)"
PIDS=()
trap 'for p in "${PIDS[@]:-}"; do kill -9 "$p" 2>/dev/null; done; rm -rf "$DIR"' EXIT

echo "cluster-smoke: building (servers and router with -race)"
go build -race -o "$DIR/tabledserver" ./cmd/tabledserver || exit 1
go build -race -o "$DIR/tabledrouter" ./cmd/tabledrouter || exit 1
go build -o "$DIR/tabledload" ./cmd/tabledload || exit 1

wait_ready() { # url name
    for _ in $(seq 1 100); do
        curl -fsS "$1" >/dev/null 2>&1 && return 0
        sleep 0.2
    done
    echo "cluster-smoke: FAIL: $2 did not become ready"
    cat "$DIR"/*.log
    return 1
}

NODES=""
declare -a NODE_PIDS=()
for i in 0 1 2; do
    PORT=$((BASE_PORT + i))
    "$DIR/tabledserver" -addr "127.0.0.1:$PORT" -mapping diagonal -shards 8 \
        -rows "$ROWS" -cols "$COLS" >"$DIR/node-$i.log" 2>&1 &
    NODE_PIDS[$i]=$!
    PIDS+=("${NODE_PIDS[$i]}")
    NODES="$NODES${NODES:+,}http://127.0.0.1:$PORT"
done
for i in 0 1 2; do
    wait_ready "http://127.0.0.1:$((BASE_PORT + i))/readyz" "node-$i" || exit 1
done

"$DIR/tabledrouter" -addr "127.0.0.1:$ROUTER_PORT" -nodes "$NODES" \
    -mapping diagonal -max-addr "$MAX_ADDR" -retries 5 \
    -health-every 250ms >"$DIR/router.log" 2>&1 &
ROUTER_PID=$!
PIDS+=("$ROUTER_PID")
wait_ready "http://127.0.0.1:$ROUTER_PORT/readyz" router || exit 1

"$DIR/tabledserver" -addr "127.0.0.1:$DIRECT_PORT" -mapping diagonal -shards 8 \
    -rows "$ROWS" -cols "$COLS" >"$DIR/direct.log" 2>&1 &
DIRECT_PID=$!
PIDS+=("$DIRECT_PID")
wait_ready "http://127.0.0.1:$DIRECT_PORT/readyz" direct-node || exit 1
echo "cluster-smoke: 3 members + router + direct baseline up"

# --- 1. router vs direct single-node throughput -------------------------
: >BENCH_cluster.json
for TARGET in "http://127.0.0.1:$DIRECT_PORT" "http://127.0.0.1:$ROUTER_PORT"; do
    EXTRA=""
    [ "$TARGET" = "http://127.0.0.1:$ROUTER_PORT" ] && EXTRA="-nodes"
    echo "cluster-smoke: driving $BENCH_OPS ops at $TARGET"
    if ! "$DIR/tabledload" -addr "$TARGET" -wire binary $EXTRA \
        -clients 4 -batch 128 -ops "$BENCH_OPS" -rows "$ROWS" -cols "$COLS" \
        -seed 1 -json >>BENCH_cluster.json 2>"$DIR/bench.log"; then
        echo "cluster-smoke: FAIL: bench run at $TARGET errored"
        cat "$DIR/bench.log"
        exit 1
    fi
    grep 'ops/s' "$DIR/bench.log" | tail -1
done

# --- 2. SIGKILL a member mid-load ---------------------------------------
ACKLOG="$DIR/acked.log"
echo "cluster-smoke: seq load with ack log, killing node-1 mid-run"
"$DIR/tabledload" -addr "http://127.0.0.1:$ROUTER_PORT" -seq -acklog "$ACKLOG" \
    -clients 4 -batch 64 -ops "$SEQ_OPS" -rows "$ROWS" -cols "$COLS" \
    -retries 5 >"$DIR/seqload.log" 2>&1 &
LOAD_PID=$!
# Wait until the run is demonstrably mid-flight (acks from all ranges).
for _ in $(seq 1 200); do
    [ -f "$ACKLOG" ] && [ "$(wc -l <"$ACKLOG")" -ge 20000 ] && break
    kill -0 "$LOAD_PID" 2>/dev/null || break
    sleep 0.1
done
kill -9 "${NODE_PIDS[1]}" 2>/dev/null
KILL_AT_LINES=$( (wc -l <"$ACKLOG") 2>/dev/null || echo 0)
echo "cluster-smoke: SIGKILL node-1 after $KILL_AT_LINES acked cells"
wait "$LOAD_PID"
LOAD_RC=$?
tail -2 "$DIR/seqload.log"
# Errors are EXPECTED: writes to the dead range fail until the run ends.
echo "cluster-smoke: seq load exit $LOAD_RC ($(wc -l <"$ACKLOG") cells acked)"

# --- 3. router reports the dead member, but keeps serving ---------------
DETECTED=0
for _ in $(seq 1 40); do
    BODY=$(curl -fsS "http://127.0.0.1:$ROUTER_PORT/readyz" 2>/dev/null)
    if echo "$BODY" | grep -q "node-1 down"; then DETECTED=1; break; fi
    sleep 0.25
done
if [ "$DETECTED" != 1 ]; then
    echo "cluster-smoke: FAIL: /readyz never reported node-1 down"
    curl -fsS "http://127.0.0.1:$ROUTER_PORT/readyz" || true
    exit 1
fi
echo "cluster-smoke: router /readyz 200 with degraded membership: $(curl -fsS "http://127.0.0.1:$ROUTER_PORT/readyz")"

# --- 4. zero acked-write loss on surviving ranges -----------------------
python3 - "$ROUTER_PORT" "$ACKLOG" "$DIR/survivors.log" <<'EOF' || exit 1
import json, sys, urllib.request

port, acklog, out = sys.argv[1], sys.argv[2], sys.argv[3]
with urllib.request.urlopen(f"http://127.0.0.1:{port}/v1/cluster") as resp:
    cluster = json.load(resp)
healthy = [(n["lo"], n["hi"]) for n in cluster["nodes"] if n["state"] == "healthy"]
dead = [n["name"] for n in cluster["nodes"] if n["state"] != "healthy"]
assert dead == ["node-1"], f"unexpected unhealthy set {dead}"

def addr(x, y):  # diagonal mapping
    return (x + y - 1) * (x + y - 2) // 2 + y

kept = dropped = 0
with open(acklog) as f, open(out, "w") as o:
    for line in f:
        parts = line.split()
        if len(parts) != 3:
            continue  # torn final line: unacknowledged, not lost
        a = addr(int(parts[0]), int(parts[1]))
        if any(lo <= a < hi for lo, hi in healthy):
            o.write(line)
            kept += 1
        else:
            dropped += 1
assert kept > 0, "no acked cells on surviving ranges -- kill happened too early"
assert dropped > 0, "no acked cells on the killed range -- kill happened too late"
print(f"cluster-smoke: {kept} acked cells on surviving ranges, {dropped} on the dead one")
EOF

if ! "$DIR/tabledload" -addr "http://127.0.0.1:$ROUTER_PORT" \
    -check "$DIR/survivors.log" -batch 64 -retries 5 2>&1 | tail -1; then
    echo "cluster-smoke: FAIL: acked writes lost on surviving nodes"
    exit 1
fi

# --- 5. clean drains -----------------------------------------------------
for NAME in router node-0 node-2 direct; do
    case $NAME in
        router) P=$ROUTER_PID ;;
        node-0) P=${NODE_PIDS[0]} ;;
        node-2) P=${NODE_PIDS[2]} ;;
        direct) P=$DIRECT_PID ;;
    esac
    kill -TERM "$P" 2>/dev/null
    if ! wait "$P"; then
        echo "cluster-smoke: FAIL: $NAME did not drain cleanly"
        exit 1
    fi
done
PIDS=()
echo "cluster-smoke: PASS"
