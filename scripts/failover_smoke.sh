#!/usr/bin/env bash
# Failover smoke for per-range WAL replication (internal/walog streaming +
# cmd/tabledserver -replicate-from + internal/cluster failover routing +
# cmd/tabledrouter live spec reload): boot three race-built primaries, a
# follower replicating each, and a race-built router fronting them via a
# spec file, then
#
#   1. drive a -seq ack-logged load through the router and SIGKILL
#      primary-1 mid-run (primaries run semi-sync: -repl-ack holds write
#      acks until the follower durably replicated them, so every acked
#      cell survives the kill by construction);
#   2. promote follower-1 (POST /v1/promote) and time how long the router
#      takes to observe the role change and resume writes on the range —
#      the promote latency lands in BENCH_failover.json;
#   3. -check the FULL ack log through the router: zero acked-write loss,
#      including every cell acked on the killed primary's range;
#   4. rewrite the spec file making follower-1 the range's base and SIGHUP
#      the router: the new topology must serve without a router restart;
#   5. SIGTERM everything still running — clean drains exit 0.
#
# Usage: scripts/failover_smoke.sh   (from the repo root; builds with -race)
set -u

BASE_PORT="${FAILOVER_PORT:-18121}"   # primaries BASE..BASE+2, followers BASE+10..BASE+12
ROUTER_PORT=$((BASE_PORT + 20))
ROWS=512 COLS=512
SEQ_OPS="${FAILOVER_SEQ_OPS:-60000}"
SEQ_ROWS=$((SEQ_OPS / COLS))
MAX_ADDR=$(( (SEQ_ROWS + COLS - 1) * (SEQ_ROWS + COLS - 2) / 2 + COLS ))

DIR="$(mktemp -d)"
PIDS=()
trap 'for p in "${PIDS[@]:-}"; do kill -9 "$p" 2>/dev/null; done; rm -rf "$DIR"' EXIT

echo "failover-smoke: building (servers and router with -race)"
go build -race -o "$DIR/tabledserver" ./cmd/tabledserver || exit 1
go build -race -o "$DIR/tabledrouter" ./cmd/tabledrouter || exit 1
go build -o "$DIR/tabledload" ./cmd/tabledload || exit 1

wait_ready() { # url name
    for _ in $(seq 1 100); do
        curl -fsS "$1" >/dev/null 2>&1 && return 0
        sleep 0.2
    done
    echo "failover-smoke: FAIL: $2 did not become ready"
    cat "$DIR"/*.log
    return 1
}

declare -a PRIMARY_PIDS=() FOLLOWER_PIDS=()
for i in 0 1 2; do
    PPORT=$((BASE_PORT + i))
    FPORT=$((BASE_PORT + 10 + i))
    "$DIR/tabledserver" -addr "127.0.0.1:$PPORT" -mapping diagonal -shards 8 \
        -rows "$ROWS" -cols "$COLS" -wal "$DIR/primary-$i.wal" -repl-ack 10s \
        >"$DIR/primary-$i.log" 2>&1 &
    PRIMARY_PIDS[$i]=$!
    PIDS+=("${PRIMARY_PIDS[$i]}")
    "$DIR/tabledserver" -addr "127.0.0.1:$FPORT" -mapping diagonal -shards 8 \
        -rows "$ROWS" -cols "$COLS" -wal "$DIR/follower-$i.wal" \
        -replicate-from "http://127.0.0.1:$PPORT" >"$DIR/follower-$i.log" 2>&1 &
    FOLLOWER_PIDS[$i]=$!
    PIDS+=("${FOLLOWER_PIDS[$i]}")
done
for i in 0 1 2; do
    wait_ready "http://127.0.0.1:$((BASE_PORT + i))/healthz" "primary-$i" || exit 1
    # Followers are degraded (read-only) by design: probe liveness, not readiness.
    wait_ready "http://127.0.0.1:$((BASE_PORT + 10 + i))/healthz" "follower-$i" || exit 1
done

# Spec file: the EvenSpec split (scripts stay in lockstep with the -nodes
# quick-start) plus a replica per range.
SPEC="$DIR/spec.json"
python3 - "$BASE_PORT" "$MAX_ADDR" >"$SPEC" <<'EOF' || exit 1
import json, sys
base_port, max_addr = int(sys.argv[1]), int(sys.argv[2])
span = max_addr // 3
nodes, lo = [], 1
for i in range(3):
    hi = 1 << 40 if i == 2 else lo + span
    nodes.append({"name": f"node-{i}", "base": f"http://127.0.0.1:{base_port + i}",
                  "replica": f"http://127.0.0.1:{base_port + 10 + i}", "lo": lo, "hi": hi})
    lo = hi
json.dump({"mapping": "diagonal", "nodes": nodes}, sys.stdout, indent=1)
EOF

"$DIR/tabledrouter" -addr "127.0.0.1:$ROUTER_PORT" -spec "$SPEC" \
    -retries 5 -health-every 250ms -spec-poll 1s >"$DIR/router.log" 2>&1 &
ROUTER_PID=$!
PIDS+=("$ROUTER_PID")
wait_ready "http://127.0.0.1:$ROUTER_PORT/readyz" router || exit 1
echo "failover-smoke: 3 semi-sync primaries + 3 followers + router up"

# --- 1. SIGKILL primary-1 mid-load --------------------------------------
ACKLOG="$DIR/acked.log"
echo "failover-smoke: seq load with ack log, killing primary-1 mid-run"
"$DIR/tabledload" -addr "http://127.0.0.1:$ROUTER_PORT" -seq -acklog "$ACKLOG" \
    -clients 4 -batch 64 -ops "$SEQ_OPS" -rows "$ROWS" -cols "$COLS" \
    -retries 5 >"$DIR/seqload.log" 2>&1 &
LOAD_PID=$!
for _ in $(seq 1 200); do
    [ -f "$ACKLOG" ] && [ "$(wc -l <"$ACKLOG")" -ge 15000 ] && break
    kill -0 "$LOAD_PID" 2>/dev/null || break
    sleep 0.1
done
kill -9 "${PRIMARY_PIDS[1]}" 2>/dev/null
KILL_AT_LINES=$( (wc -l <"$ACKLOG") 2>/dev/null || echo 0)
echo "failover-smoke: SIGKILL primary-1 after $KILL_AT_LINES acked cells"

# --- 2. promote follower-1, router must observe it live ------------------
# Wait until the router's checker has marked the primary down, so the
# timed window is promote→failover, not detection of the kill itself.
for _ in $(seq 1 40); do
    curl -fsS "http://127.0.0.1:$ROUTER_PORT/readyz" 2>/dev/null | grep -q "node-1 down" && break
    sleep 0.25
done
PROMOTE_NS=$(date +%s%N)
curl -fsS -X POST "http://127.0.0.1:$((BASE_PORT + 11))/v1/promote" >/dev/null || {
    echo "failover-smoke: FAIL: promote request refused"; exit 1; }
FAILED_OVER=0
for _ in $(seq 1 80); do
    if curl -fsS "http://127.0.0.1:$ROUTER_PORT/v1/cluster" 2>/dev/null \
        | grep -q '"replica_promoted":true'; then FAILED_OVER=1; break; fi
    sleep 0.05
done
PROMOTED_NS=$(date +%s%N)
if [ "$FAILED_OVER" != 1 ]; then
    echo "failover-smoke: FAIL: router never observed the promotion"
    curl -fsS "http://127.0.0.1:$ROUTER_PORT/v1/cluster" || true
    exit 1
fi
PROMOTE_MS=$(( (PROMOTED_NS - PROMOTE_NS) / 1000000 ))
echo "failover-smoke: router observed promotion in ${PROMOTE_MS}ms"
wait "$LOAD_PID"
echo "failover-smoke: seq load exit $? ($(wc -l <"$ACKLOG") cells acked)"
tail -2 "$DIR/seqload.log"
printf '{"bench":"failover_promote","promote_ms":%d,"acked_cells":%d,"kill_at":%d,"seq_ops":%d}\n' \
    "$PROMOTE_MS" "$(wc -l <"$ACKLOG")" "$KILL_AT_LINES" "$SEQ_OPS" >BENCH_failover.json

# --- 3. zero acked-write loss, killed range included ---------------------
# Semi-sync acks mean every logged cell reached follower-1's WAL before
# the client saw its 200: the FULL log must read back, no filtering.
if ! "$DIR/tabledload" -addr "http://127.0.0.1:$ROUTER_PORT" \
    -check "$ACKLOG" -batch 64 -retries 5 2>&1 | tail -1; then
    echo "failover-smoke: FAIL: acked writes lost across failover"
    exit 1
fi
echo "failover-smoke: every acked write read back through the failed-over router"

# --- 4. live spec reload: follower-1 becomes the range's base ------------
python3 - "$SPEC" "$((BASE_PORT + 11))" <<'EOF' || exit 1
import json, sys
path, fport = sys.argv[1], sys.argv[2]
spec = json.load(open(path))
spec["nodes"][1]["base"] = f"http://127.0.0.1:{fport}"
del spec["nodes"][1]["replica"]
json.dump(spec, open(path, "w"), indent=1)
EOF
kill -HUP "$ROUTER_PID"
RELOADED=0
for _ in $(seq 1 40); do
    if curl -fsS "http://127.0.0.1:$ROUTER_PORT/v1/cluster" 2>/dev/null \
        | grep -q "\"base\":\"http://127.0.0.1:$((BASE_PORT + 11))\""; then RELOADED=1; break; fi
    sleep 0.25
done
if [ "$RELOADED" != 1 ]; then
    echo "failover-smoke: FAIL: router did not absorb the edited spec"
    cat "$DIR/router.log" | tail -5
    exit 1
fi
if ! kill -0 "$ROUTER_PID" 2>/dev/null; then
    echo "failover-smoke: FAIL: router restarted/died during reload"
    exit 1
fi
# The promoted range serves reads and writes under the new spec.
BODY=$(curl -fsS -X POST "http://127.0.0.1:$ROUTER_PORT/v1/batch" \
    -H 'Content-Type: application/json' \
    -d '{"ops":[{"op":"set","x":1,"y":1,"v":"post-reload"},{"op":"get","x":1,"y":1}]}')
echo "$BODY" | grep -q '"v":"post-reload"' || {
    echo "failover-smoke: FAIL: post-reload write/read through router: $BODY"; exit 1; }
echo "failover-smoke: router absorbed the new spec without restart"

# --- 5. clean drains -----------------------------------------------------
for NAME in router primary-0 primary-2 follower-0 follower-1 follower-2; do
    case $NAME in
        router) P=$ROUTER_PID ;;
        primary-0) P=${PRIMARY_PIDS[0]} ;;
        primary-2) P=${PRIMARY_PIDS[2]} ;;
        follower-0) P=${FOLLOWER_PIDS[0]} ;;
        follower-1) P=${FOLLOWER_PIDS[1]} ;;
        follower-2) P=${FOLLOWER_PIDS[2]} ;;
    esac
    kill -TERM "$P" 2>/dev/null
    if ! wait "$P"; then
        echo "failover-smoke: FAIL: $NAME did not drain cleanly"
        exit 1
    fi
done
PIDS=()
echo "failover-smoke: PASS"
