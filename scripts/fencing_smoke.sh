#!/usr/bin/env bash
# Fencing + reseed smoke for epoch-fenced replication (DESIGN §5e): one
# race-built semi-sync primary with a reseed-capable follower behind a
# race-built router, then the split-brain drill end to end:
#
#   1. drive a -seq ack-logged load through the router and SIGKILL the
#      primary mid-run;
#   2. promote the follower (POST /v1/promote — bumps the epoch durably
#      before opening writes) and let the load finish against the
#      promoted node;
#   3. restart the STALE primary binary into its OLD spec slot — the
#      classic split-brain hazard. The router must fence it (its epoch 0
#      is behind the pair's latched max 1): time-to-fenced lands in
#      BENCH_fencing.json, and sentinel writes through the router must
#      land on the promoted node with ZERO of them visible on the stale
#      one;
#   4. fork the stale node's history with a direct (router-bypassing)
#      write — the documented limitation self-fencing can't catch — then
#      restart it as a follower of the promoted node: it must auto-reseed
#      over /v1/repl/snapshot (reseeds=1, epoch adopted, fork discarded,
#      post-promote writes readable); reseed throughput lands in
#      BENCH_fencing.json;
#   5. -check the FULL ack log through the router (zero acked-write loss
#      across kill + promote + fence + reseed), then SIGTERM everything —
#      clean drains exit 0.
#
# Usage: scripts/fencing_smoke.sh   (from the repo root; builds with -race)
set -u

PPORT="${FENCING_PORT:-18151}"
FPORT=$((PPORT + 1))
ROUTER_PORT=$((PPORT + 2))
ROWS=512 COLS=512
SEQ_OPS="${FENCING_SEQ_OPS:-30000}"

DIR="$(mktemp -d)"
PIDS=()
trap 'for p in "${PIDS[@]:-}"; do kill -9 "$p" 2>/dev/null; done; rm -rf "$DIR"' EXIT

echo "fencing-smoke: building (servers and router with -race)"
go build -race -o "$DIR/tabledserver" ./cmd/tabledserver || exit 1
go build -race -o "$DIR/tabledrouter" ./cmd/tabledrouter || exit 1
go build -o "$DIR/tabledload" ./cmd/tabledload || exit 1

wait_ready() { # url name
    for _ in $(seq 1 100); do
        curl -fsS "$1" >/dev/null 2>&1 && return 0
        sleep 0.2
    done
    echo "fencing-smoke: FAIL: $2 did not become ready"
    tail -5 "$DIR"/*.log
    return 1
}

start_primary() {
    "$DIR/tabledserver" -addr "127.0.0.1:$PPORT" -mapping diagonal -shards 8 \
        -rows "$ROWS" -cols "$COLS" -wal "$DIR/primary.wal" \
        -snapshot "$DIR/primary.gob" -repl-ack 10s \
        >>"$DIR/primary.log" 2>&1 &
    PRIMARY_PID=$!
    PIDS+=("$PRIMARY_PID")
}

start_primary
"$DIR/tabledserver" -addr "127.0.0.1:$FPORT" -mapping diagonal -shards 8 \
    -rows "$ROWS" -cols "$COLS" -wal "$DIR/follower.wal" \
    -snapshot "$DIR/follower.gob" \
    -replicate-from "http://127.0.0.1:$PPORT" >"$DIR/follower.log" 2>&1 &
FOLLOWER_PID=$!
PIDS+=("$FOLLOWER_PID")
wait_ready "http://127.0.0.1:$PPORT/healthz" primary || exit 1
wait_ready "http://127.0.0.1:$FPORT/healthz" follower || exit 1

SPEC="$DIR/spec.json"
cat >"$SPEC" <<EOF
{"mapping": "diagonal", "nodes": [
 {"name": "node-0", "base": "http://127.0.0.1:$PPORT",
  "replica": "http://127.0.0.1:$FPORT", "lo": 1, "hi": 1099511627776}]}
EOF
"$DIR/tabledrouter" -addr "127.0.0.1:$ROUTER_PORT" -spec "$SPEC" \
    -retries 5 -health-every 250ms >"$DIR/router.log" 2>&1 &
ROUTER_PID=$!
PIDS+=("$ROUTER_PID")
wait_ready "http://127.0.0.1:$ROUTER_PORT/readyz" router || exit 1
echo "fencing-smoke: semi-sync primary + reseed-capable follower + router up"

# --- 1. SIGKILL the primary mid-load -------------------------------------
ACKLOG="$DIR/acked.log"
echo "fencing-smoke: seq load with ack log, killing the primary mid-run"
"$DIR/tabledload" -addr "http://127.0.0.1:$ROUTER_PORT" -seq -acklog "$ACKLOG" \
    -clients 4 -batch 64 -ops "$SEQ_OPS" -rows "$ROWS" -cols "$COLS" \
    -retries 5 >"$DIR/seqload.log" 2>&1 &
LOAD_PID=$!
for _ in $(seq 1 200); do
    [ -f "$ACKLOG" ] && [ "$(wc -l <"$ACKLOG")" -ge 8000 ] && break
    kill -0 "$LOAD_PID" 2>/dev/null || break
    sleep 0.1
done
kill -9 "$PRIMARY_PID" 2>/dev/null
echo "fencing-smoke: SIGKILL primary after $(wc -l <"$ACKLOG" 2>/dev/null || echo 0) acked cells"

# --- 2. promote the follower ---------------------------------------------
for _ in $(seq 1 40); do
    curl -fsS "http://127.0.0.1:$ROUTER_PORT/readyz" 2>/dev/null | grep -q "node-0 down" && break
    sleep 0.25
done
PROMOTE_BODY=$(curl -fsS -X POST "http://127.0.0.1:$FPORT/v1/promote") || {
    echo "fencing-smoke: FAIL: promote request refused"; exit 1; }
echo "$PROMOTE_BODY" | grep -q '"epoch":1' || {
    echo "fencing-smoke: FAIL: promote did not bump the epoch: $PROMOTE_BODY"; exit 1; }
for _ in $(seq 1 80); do
    curl -fsS "http://127.0.0.1:$ROUTER_PORT/v1/cluster" 2>/dev/null \
        | grep -q '"replica_promoted":true' && break
    sleep 0.05
done
wait "$LOAD_PID"
echo "fencing-smoke: load exit $? ($(wc -l <"$ACKLOG") cells acked), follower promoted at epoch 1"

# --- 3. restart the stale primary into its OLD slot — must be fenced -----
echo "fencing-smoke: restarting the stale primary into its old spec slot"
RESTART_NS=$(date +%s%N)
start_primary
wait_ready "http://127.0.0.1:$PPORT/healthz" stale-primary || exit 1
FENCED=0
for _ in $(seq 1 100); do
    if curl -fsS "http://127.0.0.1:$ROUTER_PORT/v1/cluster" 2>/dev/null \
        | grep -q '"fenced":true'; then FENCED=1; break; fi
    sleep 0.05
done
FENCED_NS=$(date +%s%N)
if [ "$FENCED" != 1 ]; then
    echo "fencing-smoke: FAIL: router never fenced the restarted stale primary"
    curl -fsS "http://127.0.0.1:$ROUTER_PORT/v1/cluster" || true
    exit 1
fi
TIME_TO_FENCED_MS=$(( (FENCED_NS - RESTART_NS) / 1000000 ))
echo "fencing-smoke: stale primary fenced ${TIME_TO_FENCED_MS}ms after restart"

# Sentinel writes through the router: all must land on the promoted node,
# zero on the stale one (the fence in action). Positions sit far outside
# the seq load's walk so the later -check is undisturbed.
for i in 1 2 3 4 5; do
    X=$((500 + i))
    BODY=$(curl -fsS -X POST "http://127.0.0.1:$ROUTER_PORT/v1/batch" \
        -H 'Content-Type: application/json' \
        -d "{\"ops\":[{\"op\":\"set\",\"x\":$X,\"y\":510,\"v\":\"fenced-$i\"}]}") || {
        echo "fencing-smoke: FAIL: post-fence write $i refused"; exit 1; }
    echo "$BODY" | grep -q '"err"' && {
        echo "fencing-smoke: FAIL: post-fence write $i errored: $BODY"; exit 1; }
done
for i in 1 2 3 4 5; do
    X=$((500 + i))
    STALE=$(curl -fsS -X POST "http://127.0.0.1:$PPORT/v1/batch" \
        -H 'Content-Type: application/json' \
        -d "{\"ops\":[{\"op\":\"get\",\"x\":$X,\"y\":510}]}")
    echo "$STALE" | grep -q "fenced-$i" && {
        echo "fencing-smoke: FAIL: write $i leaked to the stale primary: $STALE"; exit 1; }
    PROMOTED=$(curl -fsS -X POST "http://127.0.0.1:$FPORT/v1/batch" \
        -H 'Content-Type: application/json' \
        -d "{\"ops\":[{\"op\":\"get\",\"x\":$X,\"y\":510}]}")
    echo "$PROMOTED" | grep -q "fenced-$i" || {
        echo "fencing-smoke: FAIL: write $i missing on the promoted node: $PROMOTED"; exit 1; }
done
echo "fencing-smoke: 5/5 sentinel writes on the promoted node, 0/5 on the stale one"

# --- 4. re-point the stale node at the winner — must auto-reseed ---------
# First fork its history with a direct write (bypassing the router — the
# documented self-fencing limitation), so tailing cannot possibly resume.
# The stale node still runs semi-sync with nobody replicating it, so the
# ack times out with a 503 — but per the semi-sync contract the record is
# already durable in its local WAL, which is exactly the fork we want.
curl -sS -X POST "http://127.0.0.1:$PPORT/v1/batch" \
    -H 'Content-Type: application/json' \
    -d '{"ops":[{"op":"set","x":400,"y":400,"v":"forked"}]}' >/dev/null || true
kill -TERM "$PRIMARY_PID" 2>/dev/null
wait "$PRIMARY_PID" 2>/dev/null
echo "fencing-smoke: restarting the stale node as a follower of the promoted one"
RESEED_NS=$(date +%s%N)
"$DIR/tabledserver" -addr "127.0.0.1:$PPORT" -mapping diagonal -shards 8 \
    -rows "$ROWS" -cols "$COLS" -wal "$DIR/primary.wal" \
    -snapshot "$DIR/primary.gob" \
    -replicate-from "http://127.0.0.1:$FPORT" >>"$DIR/primary.log" 2>&1 &
PRIMARY_PID=$!
PIDS+=("$PRIMARY_PID")
wait_ready "http://127.0.0.1:$PPORT/healthz" reseeding-follower || exit 1
RESEEDED=0
for _ in $(seq 1 200); do
    STATUS=$(curl -fsS "http://127.0.0.1:$PPORT/v1/repl/status" 2>/dev/null)
    if echo "$STATUS" | grep -q '"reseeds":1'; then RESEEDED=1; break; fi
    sleep 0.1
done
RESEEDED_NS=$(date +%s%N)
if [ "$RESEEDED" != 1 ]; then
    echo "fencing-smoke: FAIL: stale node never reseeded: $STATUS"
    tail -10 "$DIR/primary.log"
    exit 1
fi
RESEED_MS=$(( (RESEEDED_NS - RESEED_NS) / 1000000 ))
echo "$STATUS" | grep -q '"epoch":1' || {
    echo "fencing-smoke: FAIL: reseeded node did not adopt epoch 1: $STATUS"; exit 1; }
RESEED_BYTES=$(curl -fsS "http://127.0.0.1:$PPORT/metrics" \
    | awk '/^tabled_repl_reseed_bytes_total/ {print int($2)}')
RESEED_BPS=$(( RESEED_MS > 0 ? RESEED_BYTES * 1000 / RESEED_MS : 0 ))
echo "fencing-smoke: reseed complete in ${RESEED_MS}ms (${RESEED_BYTES} bytes)"

# Wait out the tail: the reseed lands at the snapshot cut, the last few
# records arrive by ordinary frame pulls right after.
for _ in $(seq 1 100); do
    curl -fsS "http://127.0.0.1:$PPORT/v1/repl/status" 2>/dev/null \
        | grep -q '"lag":0' && break
    sleep 0.1
done
# The fork is gone; the post-promote sentinel writes are visible on the
# reseeded follower (reads are allowed on a degraded follower).
REREAD=$(curl -fsS -X POST "http://127.0.0.1:$PPORT/v1/batch" \
    -H 'Content-Type: application/json' \
    -d '{"ops":[{"op":"get","x":400,"y":400},{"op":"get","x":501,"y":510}]}')
echo "$REREAD" | grep -q '"v":"forked"' && {
    echo "fencing-smoke: FAIL: forked write survived the reseed: $REREAD"; exit 1; }
echo "$REREAD" | grep -q '"v":"fenced-1"' || {
    echo "fencing-smoke: FAIL: post-promote write missing after reseed: $REREAD"; exit 1; }
echo "fencing-smoke: fork discarded, post-promote writes present on the reseeded node"
printf '{"bench":"fencing","time_to_fenced_ms":%d,"reseed_ms":%d,"reseed_bytes":%d,"reseed_bytes_per_sec":%d,"acked_cells":%d,"seq_ops":%d}\n' \
    "$TIME_TO_FENCED_MS" "$RESEED_MS" "$RESEED_BYTES" "$RESEED_BPS" \
    "$(wc -l <"$ACKLOG")" "$SEQ_OPS" >BENCH_fencing.json

# --- 5. zero acked-write loss end to end, then clean drains --------------
CHECK_OUT=$("$DIR/tabledload" -addr "http://127.0.0.1:$ROUTER_PORT" \
    -check "$ACKLOG" -batch 64 -retries 5 2>&1)
CHECK_RC=$?
echo "$CHECK_OUT" | tail -1
if [ "$CHECK_RC" != 0 ]; then
    echo "fencing-smoke: FAIL: acked writes lost across kill+promote+fence+reseed"
    exit 1
fi
echo "fencing-smoke: every acked write read back through the router"

for NAME in router reseeded-follower promoted; do
    case $NAME in
        router) P=$ROUTER_PID ;;
        reseeded-follower) P=$PRIMARY_PID ;;
        promoted) P=$FOLLOWER_PID ;;
    esac
    kill -TERM "$P" 2>/dev/null
    if ! wait "$P"; then
        echo "fencing-smoke: FAIL: $NAME did not drain cleanly"
        exit 1
    fi
done
PIDS=()
echo "fencing-smoke: PASS"
