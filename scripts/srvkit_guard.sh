#!/usr/bin/env bash
# Guard: the server mains must build their HTTP stack and lifecycle
# exclusively through internal/srvkit. A hand-rolled http.Server grows
# hardcoded connection deadlines (the WriteTimeout-vs-batch-timeout bug
# this repo shipped once already), a hand-rolled signal.NotifyContext
# grows its own — subtly different — shutdown ordering, and hand-rolled
# TimeoutHandler/MaxBytesReader wiring drifts from the one correct
# middleware order. srvkit exists so those decisions are made once;
# this script fails CI when a main makes them again.
#
# Usage: scripts/srvkit_guard.sh   (from the repo root)
set -u

status=0
for f in cmd/*server/main.go; do
    [ -e "$f" ] || continue
    bad=$(grep -nE 'http\.Server\{|signal\.NotifyContext|http\.TimeoutHandler|http\.MaxBytesReader|"net/http/pprof"' "$f")
    if [ -n "$bad" ]; then
        echo "srvkit-guard: $f builds its HTTP stack by hand instead of through internal/srvkit:" >&2
        echo "$bad" >&2
        status=1
    fi
done
if [ "$status" -eq 0 ]; then
    echo "srvkit-guard: ok — all server mains go through internal/srvkit"
fi
exit "$status"
