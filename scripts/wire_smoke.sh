#!/usr/bin/env bash
# Wire smoke for the binary batch protocol (docs/WIRE.md): boot a
# race-built tabledserver, drive the same load through the JSON wire and
# the binary wire (tabledload -wire), assert a binary-written cell reads
# back over JSON (cross-wire consistency on one endpoint), and FAIL if the
# binary wire is not faster than JSON — the regression gate for the
# zero-allocation batch path (EXPERIMENTS.md E26). Both JSON report lines
# are written to BENCH_wire.json for archiving.
#
# Usage: scripts/wire_smoke.sh   (from the repo root; builds with -race)
set -u

PORT="${WIRE_PORT:-18082}"
OPS="${WIRE_OPS:-100000}"
DIR="$(mktemp -d)"
SRV_PID=""
trap '[ -n "$SRV_PID" ] && kill -9 "$SRV_PID" 2>/dev/null; rm -rf "$DIR"' EXIT

echo "wire-smoke: building (server with -race)"
go build -race -o "$DIR/tabledserver" ./cmd/tabledserver || exit 1
go build -o "$DIR/tabledload" ./cmd/tabledload || exit 1

"$DIR/tabledserver" -addr "127.0.0.1:$PORT" -shards 16 \
    -rows 2048 -cols 2048 >"$DIR/server.log" 2>&1 &
SRV_PID=$!
for _ in $(seq 1 100); do
    curl -fsS "http://127.0.0.1:$PORT/healthz" >/dev/null 2>&1 && break
    sleep 0.2
done
if ! curl -fsS "http://127.0.0.1:$PORT/healthz" >/dev/null 2>&1; then
    echo "wire-smoke: FAIL: server did not become healthy"
    cat "$DIR/server.log"
    exit 1
fi
echo "wire-smoke: server up (pid $SRV_PID)"

: >BENCH_wire.json
for WIRE in json binary; do
    echo "wire-smoke: driving $OPS ops over the $WIRE wire"
    if ! "$DIR/tabledload" -addr "http://127.0.0.1:$PORT" -wire "$WIRE" \
        -clients 4 -batch 128 -ops "$OPS" -rows 2048 -cols 2048 -seed 1 \
        -json >>BENCH_wire.json 2>"$DIR/load-$WIRE.log"; then
        echo "wire-smoke: FAIL: $WIRE load run errored"
        cat "$DIR/load-$WIRE.log"
        exit 1
    fi
    tail -1 "$DIR/load-$WIRE.log"
done

# Cross-wire consistency: a cell written over the binary wire must read
# back over JSON, proving negotiation shares one table (and that the
# server cloned the value out of its pooled request buffer).
python3 - "$PORT" <<'EOF' || exit 1
import json, sys, urllib.request

port = sys.argv[1]
url = f"http://127.0.0.1:{port}/v1/batch"

def frame(payload: bytes) -> bytes:
    import binascii, struct
    # CRC32-Castagnoli, bit-reflected (crc32c); computed via the 0x82F63B78
    # polynomial table below to avoid non-stdlib deps.
    table = []
    for i in range(256):
        c = i
        for _ in range(8):
            c = (c >> 1) ^ 0x82F63B78 if c & 1 else c >> 1
        table.append(c)
    crc = 0xFFFFFFFF
    for b in payload:
        crc = table[(crc ^ b) & 0xFF] ^ (crc >> 8)
    crc ^= 0xFFFFFFFF
    return struct.pack("<II", len(payload), crc) + payload

# version 1, 1 op: set x=77 y=88 value "cross-wire" (zigzag varints fit 1 byte)
val = b"cross-wire"
payload = bytes([1, 1, 1, 154, 1, 176, 1, len(val)]) + val
req = urllib.request.Request(url, data=frame(payload),
                             headers={"Content-Type": "application/x-tabled-batch"})
with urllib.request.urlopen(req) as resp:
    assert resp.headers["Content-Type"] == "application/x-tabled-batch", resp.headers["Content-Type"]
    resp.read()

jreq = urllib.request.Request(url, data=json.dumps(
    {"ops": [{"op": "get", "x": 77, "y": 88}]}).encode(),
    headers={"Content-Type": "application/json"})
with urllib.request.urlopen(jreq) as resp:
    res = json.load(resp)["results"][0]
assert res.get("found") and res.get("v") == "cross-wire", res
print("wire-smoke: cross-wire read-back ok (binary set -> JSON get)")
EOF

JSON_OPS=$(awk -F'"ops_per_sec":' '/"wire":"json"/ {split($2,a,","); print a[1]}' BENCH_wire.json)
BIN_OPS=$(awk -F'"ops_per_sec":' '/"wire":"binary"/ {split($2,a,","); print a[1]}' BENCH_wire.json)
if [ -z "$JSON_OPS" ] || [ -z "$BIN_OPS" ]; then
    echo "wire-smoke: FAIL: could not extract throughput from BENCH_wire.json"
    cat BENCH_wire.json
    exit 1
fi
echo "wire-smoke: json ${JSON_OPS} ops/s vs binary ${BIN_OPS} ops/s"
if ! awk -v j="$JSON_OPS" -v b="$BIN_OPS" 'BEGIN { exit !(b > j) }'; then
    echo "wire-smoke: FAIL: binary wire (${BIN_OPS} ops/s) is not faster than JSON (${JSON_OPS} ops/s)"
    exit 1
fi

kill "$SRV_PID" 2>/dev/null
wait "$SRV_PID" 2>/dev/null
SRV_PID=""
echo "wire-smoke: PASS (binary/json speedup $(awk -v j="$JSON_OPS" -v b="$BIN_OPS" 'BEGIN { printf "%.2fx", b/j }'))"
